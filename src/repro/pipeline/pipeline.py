"""The strategy-first publishing pipeline and the top-level ``repro.publish``.

Every publishing run — through the library, the service or the experiment
harness — is the same sequence of explicit stages:

    prepare  →  generalize  →  audit  →  enforce  →  report

* **prepare** resolves and validates the strategy parameters and the seed;
* **generalize** optionally runs the chi-square merging of Section 3.4
  (strategies declare whether they want it);
* **audit** tests the prepared table against the strategy's privacy spec
  (Corollary 4) before anything is published;
* **enforce** runs the strategy's own publishing algorithm over deterministic
  seeded chunks;
* **report** assembles everything into one :class:`PublishReport`.

:class:`PublishPipeline` is a fluent builder over those stages; callers that
hold pre-built artifacts (a cached group index, a cached generalisation, a
pool chunk runner) inject them and the corresponding stage is skipped
or delegated.  :func:`publish` is the one-call convenience wrapper exported
as ``repro.publish``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delta.report import DeltaReport
    from repro.delta.state import DeltaState
    from repro.stream.report import StreamReport

from repro.core.testing import audit_table
from repro.dataset.groups import GroupIndex, personal_groups
from repro.dataset.table import Table
from repro.generalization.chi_square import DEFAULT_SIGNIFICANCE
from repro.generalization.merging import GeneralizationResult, generalize_table
from repro.obs.metrics import PUBLISH_RUNS, ROWS_PUBLISHED
from repro.obs.trace import span
from repro.pipeline.execution import (
    DEFAULT_CHUNK_SIZE,
    ChunkRunner,
    coerce_seed,
    run_chunks_serial,
)
from repro.pipeline.report import PublishReport
from repro.pipeline.strategy import PublishStrategy, get_strategy


class PublishPipeline:
    """Fluent, composable builder for one publishing run.

    Example::

        report = (
            PublishPipeline("sps", lam=0.25, delta=0.3)
            .with_rng(7)
            .with_chunk_size(128)
            .run(table)
        )

    Every ``with_*`` method mutates the builder and returns it, so calls
    chain; :meth:`run` executes the staged pipeline and returns the
    :class:`~repro.pipeline.report.PublishReport`.  A pipeline instance is
    reusable: :meth:`run` does not consume it.
    """

    def __init__(self, strategy: str | PublishStrategy, **params: Any) -> None:
        self._strategy = get_strategy(strategy) if isinstance(strategy, str) else strategy
        self._params: dict[str, Any] = dict(params)
        self._rng: int | np.random.Generator | None = None
        self._chunk_size = DEFAULT_CHUNK_SIZE
        self._runner: ChunkRunner = run_chunks_serial
        self._groups: GroupIndex | None = None
        self._generalization: GeneralizationResult | None = None
        self._audit = True
        self._workers = 1
        self._parallel_backend = "auto"
        self._append: tuple[Any, "DeltaState"] | None = None

    @property
    def strategy(self) -> PublishStrategy:
        """The strategy this pipeline publishes with."""
        return self._strategy

    # ------------------------------------------------------------------ #
    # Fluent configuration
    # ------------------------------------------------------------------ #
    def with_params(self, **params: Any) -> "PublishPipeline":
        """Merge strategy parameters over any set so far."""
        self._params.update(params)
        return self

    def with_rng(self, rng: int | np.random.Generator | None) -> "PublishPipeline":
        """Seed (or generator) all randomness derives from."""
        self._rng = rng
        return self

    def with_chunk_size(self, chunk_size: int) -> "PublishPipeline":
        """Number of personal groups per deterministic work chunk."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._chunk_size = int(chunk_size)
        return self

    def with_runner(self, runner: ChunkRunner) -> "PublishPipeline":
        """Substitute the chunk executor (e.g. the service's pool runner)."""
        self._runner = runner
        return self

    def with_workers(self, workers: int, backend: str = "auto") -> "PublishPipeline":
        """Fan the enforce stage out over ``workers`` via the shared scheduler.

        A convenience over :meth:`with_runner`: installs
        :func:`repro.parallel.run_chunks` with the worker count and backend
        bound.  The published bytes are identical at any worker count (the
        scheduler's determinism contract); only wall-clock changes.
        """
        if workers <= 0:
            raise ValueError("workers must be positive")
        self._workers = int(workers)
        self._parallel_backend = backend
        from repro.parallel import run_chunks

        def runner(
            items: Sequence[Any],
            chunk_fn: Callable[[Sequence[Any], np.random.Generator], Any],
            seed: int,
            chunk_size: int,
        ) -> list[Any]:
            return run_chunks(
                items, chunk_fn, seed, chunk_size, workers=int(workers), backend=backend
            )

        return self.with_runner(runner)

    def with_groups(self, groups: GroupIndex) -> "PublishPipeline":
        """Reuse a pre-built personal-group index of the *prepared* table."""
        self._groups = groups
        return self

    def with_generalization(self, generalization: GeneralizationResult) -> "PublishPipeline":
        """Reuse a pre-computed chi-square generalisation (skips the stage)."""
        self._generalization = generalization
        return self

    def with_audit(self, enabled: bool = True) -> "PublishPipeline":
        """Toggle the audit stage (on by default for auditing strategies)."""
        self._audit = bool(enabled)
        return self

    def with_append(self, appended: Any, state: "DeltaState") -> "PublishPipeline":
        """Re-publish incrementally from a delta state instead of a table.

        ``appended`` is what :func:`repro.delta.delta_publish` accepts — a
        CSV path, an open text stream, or an in-memory batch of rows in the
        base header's column order.  :meth:`run` is then called without a
        table and returns the :class:`~repro.delta.report.DeltaReport`.  The
        state pins the strategy, its parameters, the seed and the chunk
        size (they define the published bytes), so the pipeline must have
        been built with the same strategy and no conflicting settings.
        """
        if state.strategy != self._strategy.name:
            raise ValueError(
                f"delta state was published with strategy {state.strategy!r}; "
                f"this pipeline is configured for {self._strategy.name!r}"
            )
        if self._params:
            raise ValueError(
                "a delta re-publish uses the parameters pinned in the state; "
                "remove the pipeline's strategy parameters"
            )
        self._append = (appended, state)
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, table: Table | None = None) -> "PublishReport | DeltaReport":
        """Execute the configured run: staged pipeline, or delta re-publish.

        With a ``table``, runs prepare → generalize → audit → enforce →
        report and returns the :class:`~repro.pipeline.report.PublishReport`.
        After :meth:`with_append`, runs the incremental delta engine instead
        (no table) and returns the :class:`~repro.delta.report.DeltaReport`.
        """
        if self._append is not None:
            if table is not None:
                raise ValueError(
                    "with_append() re-publishes from the delta state; "
                    "run() takes no table"
                )
            from repro.delta.engine import delta_publish

            appended, state = self._append
            return delta_publish(
                state,
                appended,
                workers=self._workers,
                parallel_backend=self._parallel_backend,
                audit=self._audit,
            )
        if table is None:
            raise ValueError("run() needs a table (or configure with_append())")
        return self._run_table(table)

    def _run_table(self, table: Table) -> PublishReport:
        """Execute prepare → generalize → audit → enforce → report on ``table``.

        Every stage runs inside a :func:`repro.obs.trace.span`, and the
        ``timings`` on the returned report are those spans' durations — the
        same numbers whether or not a tracer is active, so tracing never
        changes the report (or a single published byte).
        """
        strategy = self._strategy
        timings: dict[str, float] = {}

        with span(
            "publish", kind="publish", path="pipeline", strategy=strategy.name
        ) as root:
            # prepare: typed parameter resolution + seed normalisation.
            with span("prepare", kind="stage") as sp:
                resolved = strategy.resolve(self._params)
                seed = coerce_seed(self._rng)
                if self._generalization is not None and not strategy.generalizes:
                    raise ValueError(
                        f"strategy {strategy.name!r} has no generalize stage; "
                        "remove with_generalization()"
                    )
                if (
                    strategy.generalizes
                    and self._groups is not None
                    and self._generalization is None
                ):
                    # A caller-supplied group index must match the *prepared*
                    # table; without the matching generalization the raw-table
                    # index would be silently enforced against the generalised
                    # schema.
                    raise ValueError(
                        f"strategy {strategy.name!r} generalizes before grouping; "
                        "with_groups() also requires the matching "
                        "with_generalization()"
                    )
            timings["prepare"] = sp.duration
            root.set(seed=seed, chunk_size=self._chunk_size)

            # generalize: optional chi-square merging of the public attributes.
            with span("generalize", kind="stage", ran=strategy.generalizes) as sp:
                generalization: GeneralizationResult | None = None
                prepared = table
                if strategy.generalizes:
                    generalization = self._generalization or generalize_table(
                        table,
                        significance=resolved.get("significance", DEFAULT_SIGNIFICANCE),
                    )
                    prepared = generalization.table
            timings["generalize"] = sp.duration

            spec = strategy.spec_for(prepared, resolved)
            needs_audit = self._audit and strategy.audits and spec is not None

            # group index: reused when supplied (the service's dataset cache),
            # skipped entirely when neither the audit nor the strategy reads it
            # (e.g. an un-audited whole-table perturbation).
            cached = self._groups is not None
            with span("group_index", kind="stage", cached=cached) as sp:
                groups = self._groups
                if groups is None and (strategy.uses_groups or needs_audit):
                    groups = personal_groups(prepared)
            timings["group_index"] = sp.duration

            # audit: pre-publication test of the prepared table (Corollary 4).
            with span("audit", kind="stage", ran=needs_audit) as sp:
                audit = None
                if needs_audit:
                    audit = audit_table(prepared, spec, groups=groups)
            timings["audit"] = sp.duration

            # enforce: the strategy's own publishing algorithm, seeded chunks.
            # Chunk spans recorded by the scheduler land under this span.
            with span("enforce", kind="stage") as sp:
                outcome = strategy.enforce(
                    prepared, groups, spec, resolved, seed, self._runner, self._chunk_size
                )
            timings["enforce"] = sp.duration

            # report: assemble the unified result bundle.  Sampling stats are
            # not copied here — PublishReport derives them from the group
            # records.  The stage is booked as the residual of the run so the
            # stage timings sum to the root span's wall-clock.
            metadata = dict(outcome.metadata)
            if generalization is not None:
                metadata["generalized_domains"] = {
                    merge.original.name: {
                        "before": merge.original_domain_size,
                        "after": merge.generalized_domain_size,
                    }
                    for merge in generalization.merges
                }
            timings["report"] = max(0.0, root.elapsed() - sum(timings.values()))
            report = PublishReport(
                strategy=strategy.name,
                params=resolved,
                seed=seed,
                published=outcome.published,
                prepared=prepared,
                spec=spec,
                generalization=generalization,
                audit=audit,
                groups=outcome.records,
                metadata=metadata,
                timings=timings,
                group_index_cached=cached,
            )
            root.set(rows=len(report.published))
        PUBLISH_RUNS.inc(path="pipeline", strategy=strategy.name)
        ROWS_PUBLISHED.inc(len(report.published), strategy=strategy.name)
        return report


def publish(
    table: Table | None = None,
    strategy: str | PublishStrategy = "sps",
    *,
    source: Any = None,
    sensitive: str | None = None,
    streaming: bool = False,
    append: Any = None,
    delta_state: "DeltaState | None" = None,
    chunk_rows: int | None = None,
    output: Any = None,
    rng: int | np.random.Generator | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 1,
    audit: bool = True,
    groups: GroupIndex | None = None,
    generalization: GeneralizationResult | None = None,
    runner: ChunkRunner | None = None,
    **params: Any,
) -> "PublishReport | StreamReport | DeltaReport":
    """Publish a table or a CSV source with a named strategy — the front door.

    ``repro.publish(table, strategy="sps", lam=0.3, delta=0.3, rng=7)`` runs
    the full prepare → generalize → audit → enforce → report pipeline and
    returns the :class:`~repro.pipeline.report.PublishReport`.  All keyword
    arguments other than the options below are strategy parameters, validated
    against the strategy's typed specs.

    Instead of a table, a CSV ``source`` (path or open text stream) may be
    given together with the ``sensitive`` column name.  With
    ``streaming=False`` the source is simply loaded first; with
    ``streaming=True`` the out-of-core engine
    (:func:`repro.stream.stream_publish`) publishes it in bounded-memory
    chunks of ``chunk_rows`` records and returns a
    :class:`~repro.stream.report.StreamReport` — byte-identical output for
    the same seed and ``chunk_size``.

    Parameters
    ----------
    table:
        The raw table ``D`` (mutually exclusive with ``source``).
    strategy:
        Registered strategy name (see
        :func:`~repro.pipeline.strategy.available_strategies`) or an instance.
    source, sensitive:
        CSV path or stream plus its sensitive column, as an alternative to
        ``table``.
    streaming:
        Publish the source out-of-core (requires ``source``).
    append, delta_state:
        Incremental re-publish: fold the ``append`` rows (CSV path, stream,
        or in-memory row batch) into the dataset that ``delta_state`` (a
        :class:`~repro.delta.state.DeltaState` from
        :func:`repro.delta.publish_base`) describes, regenerating only the
        affected kernel chunks.  Returns a
        :class:`~repro.delta.report.DeltaReport`; the state pins the
        strategy, parameters, seed and chunk size, so those arguments must
        not be passed alongside.
    chunk_rows:
        Records per ingestion chunk of the streaming engine (memory knob;
        never affects the published bytes).
    output:
        Streaming only: CSV sink for the published rows (omit to materialise
        the published table on the report).
    rng:
        Seed or generator; a fixed integer seed gives byte-identical output
        through the library, the service and the streaming engine for the
        same ``chunk_size``.
    chunk_size:
        Personal groups per deterministic work chunk.
    workers:
        Fan the enforce stage out over this many workers through the shared
        scheduler (:mod:`repro.parallel`).  Never changes the published
        bytes — for a fixed seed and ``chunk_size`` the output is
        byte-identical at any worker count; only wall-clock changes.
    audit:
        Set ``False`` to skip the pre-publication audit stage.
    groups, generalization, runner:
        Pre-built artifacts / custom chunk executor (see
        :class:`PublishPipeline`); in-memory path only.  ``runner`` is
        mutually exclusive with ``workers > 1``.
    """
    if source is not None and table is not None:
        raise ValueError("pass either table or source, not both")
    if workers <= 0:
        raise ValueError("workers must be positive")
    if append is not None or delta_state is not None:
        if append is None or delta_state is None:
            raise ValueError(
                "append= and delta_state= go together: the state from a "
                "previous repro.delta.publish_base pins everything the "
                "appended rows are folded into"
            )
        if table is not None or source is not None or streaming:
            raise ValueError(
                "append= re-publishes the dataset the delta state describes; "
                "don't pass table/source/streaming alongside"
            )
        if groups is not None or generalization is not None or runner is not None:
            raise ValueError(
                "groups/generalization/runner are in-memory pipeline "
                "artifacts; the delta engine builds its own"
            )
        if params:
            raise ValueError(
                f"{sorted(params)} conflict with the delta state: an append "
                "reuses the strategy parameters pinned at publish_base time"
            )
        if chunk_rows is not None:
            raise ValueError(
                "chunk_rows is pinned in the delta state; it cannot be "
                "changed on append"
            )
        from repro.delta.engine import delta_publish

        return delta_publish(
            delta_state,
            append,
            output=output,
            workers=workers,
            audit=audit,
        )
    if runner is not None and workers > 1:
        raise ValueError("pass either workers or a custom runner, not both")
    if streaming:
        if source is None:
            raise ValueError("streaming=True requires source=")
        if sensitive is None:
            raise ValueError("source= requires sensitive= (the SA column name)")
        if groups is not None or generalization is not None or runner is not None:
            raise ValueError(
                "groups/generalization/runner are in-memory artifacts; "
                "the streaming engine builds its own"
            )
        from repro.stream.engine import stream_publish

        # Engine-only keywords are not exposed here; a name collision in
        # **params would silently bind them instead of reaching the
        # strategy's typed parameter validation — fail loudly instead.
        engine_only = {
            "materialize", "overwrite", "delimiter", "progress", "track_memory",
            "parallel_backend",
        }
        collisions = sorted(engine_only & params.keys())
        if collisions:
            raise ValueError(
                f"{collisions} are streaming-engine options, not strategy "
                "parameters; call repro.stream_publish directly to set them"
            )
        kwargs: dict[str, Any] = {}
        if chunk_rows is not None:
            kwargs["chunk_rows"] = int(chunk_rows)
        return stream_publish(
            source,
            sensitive=sensitive,
            strategy=strategy,
            rng=rng,
            chunk_size=chunk_size,
            workers=workers,
            audit=audit,
            output=output,
            **kwargs,
            **params,
        )
    if output is not None or chunk_rows is not None:
        raise ValueError("output/chunk_rows are streaming options; pass streaming=True")
    if source is not None:
        if sensitive is None:
            raise ValueError("source= requires sensitive= (the SA column name)")
        from repro.dataset.loaders import read_csv

        table = read_csv(source, sensitive=sensitive)
    if table is None:
        raise ValueError("publish() needs a table or a source")
    pipeline = (
        PublishPipeline(strategy, **params)
        .with_rng(rng)
        .with_chunk_size(chunk_size)
        .with_audit(audit)
    )
    if groups is not None:
        pipeline.with_groups(groups)
    if generalization is not None:
        pipeline.with_generalization(generalization)
    if runner is not None:
        pipeline.with_runner(runner)
    elif workers > 1:
        pipeline.with_workers(workers)
    return pipeline.run(table)
