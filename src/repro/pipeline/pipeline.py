"""The strategy-first publishing pipeline and the top-level ``repro.publish``.

Every publishing run — through the library, the service or the experiment
harness — is the same sequence of explicit stages:

    prepare  →  generalize  →  audit  →  enforce  →  report

* **prepare** resolves and validates the strategy parameters and the seed;
* **generalize** optionally runs the chi-square merging of Section 3.4
  (strategies declare whether they want it);
* **audit** tests the prepared table against the strategy's privacy spec
  (Corollary 4) before anything is published;
* **enforce** runs the strategy's own publishing algorithm over deterministic
  seeded chunks;
* **report** assembles everything into one :class:`PublishReport`.

:class:`PublishPipeline` is a fluent builder over those stages; callers that
hold pre-built artifacts (a cached group index, a cached generalisation, a
thread-pool chunk runner) inject them and the corresponding stage is skipped
or delegated.  :func:`publish` is the one-call convenience wrapper exported
as ``repro.publish``.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.testing import audit_table
from repro.dataset.groups import GroupIndex, personal_groups
from repro.dataset.table import Table
from repro.generalization.chi_square import DEFAULT_SIGNIFICANCE
from repro.generalization.merging import GeneralizationResult, generalize_table
from repro.pipeline.execution import (
    DEFAULT_CHUNK_SIZE,
    ChunkRunner,
    coerce_seed,
    run_chunks_serial,
)
from repro.pipeline.report import PublishReport
from repro.pipeline.strategy import PublishStrategy, get_strategy


class PublishPipeline:
    """Fluent, composable builder for one publishing run.

    Example::

        report = (
            PublishPipeline("sps", lam=0.25, delta=0.3)
            .with_rng(7)
            .with_chunk_size(128)
            .run(table)
        )

    Every ``with_*`` method mutates the builder and returns it, so calls
    chain; :meth:`run` executes the staged pipeline and returns the
    :class:`~repro.pipeline.report.PublishReport`.  A pipeline instance is
    reusable: :meth:`run` does not consume it.
    """

    def __init__(self, strategy: str | PublishStrategy, **params: Any) -> None:
        self._strategy = get_strategy(strategy) if isinstance(strategy, str) else strategy
        self._params: dict[str, Any] = dict(params)
        self._rng: int | np.random.Generator | None = None
        self._chunk_size = DEFAULT_CHUNK_SIZE
        self._runner: ChunkRunner = run_chunks_serial
        self._groups: GroupIndex | None = None
        self._generalization: GeneralizationResult | None = None
        self._audit = True

    @property
    def strategy(self) -> PublishStrategy:
        """The strategy this pipeline publishes with."""
        return self._strategy

    # ------------------------------------------------------------------ #
    # Fluent configuration
    # ------------------------------------------------------------------ #
    def with_params(self, **params: Any) -> "PublishPipeline":
        """Merge strategy parameters over any set so far."""
        self._params.update(params)
        return self

    def with_rng(self, rng: int | np.random.Generator | None) -> "PublishPipeline":
        """Seed (or generator) all randomness derives from."""
        self._rng = rng
        return self

    def with_chunk_size(self, chunk_size: int) -> "PublishPipeline":
        """Number of personal groups per deterministic work chunk."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._chunk_size = int(chunk_size)
        return self

    def with_runner(self, runner: ChunkRunner) -> "PublishPipeline":
        """Substitute the chunk executor (e.g. the service's thread pool)."""
        self._runner = runner
        return self

    def with_groups(self, groups: GroupIndex) -> "PublishPipeline":
        """Reuse a pre-built personal-group index of the *prepared* table."""
        self._groups = groups
        return self

    def with_generalization(self, generalization: GeneralizationResult) -> "PublishPipeline":
        """Reuse a pre-computed chi-square generalisation (skips the stage)."""
        self._generalization = generalization
        return self

    def with_audit(self, enabled: bool = True) -> "PublishPipeline":
        """Toggle the audit stage (on by default for auditing strategies)."""
        self._audit = bool(enabled)
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, table: Table) -> PublishReport:
        """Execute prepare → generalize → audit → enforce → report on ``table``."""
        strategy = self._strategy
        timings: dict[str, float] = {}

        # prepare: typed parameter resolution + seed normalisation.
        start = time.perf_counter()
        resolved = strategy.resolve(self._params)
        seed = coerce_seed(self._rng)
        if self._generalization is not None and not strategy.generalizes:
            raise ValueError(
                f"strategy {strategy.name!r} has no generalize stage; "
                "remove with_generalization()"
            )
        if strategy.generalizes and self._groups is not None and self._generalization is None:
            # A caller-supplied group index must match the *prepared* table;
            # without the matching generalization the raw-table index would be
            # silently enforced against the generalised schema.
            raise ValueError(
                f"strategy {strategy.name!r} generalizes before grouping; "
                "with_groups() also requires the matching with_generalization()"
            )
        timings["prepare"] = time.perf_counter() - start

        # generalize: optional chi-square merging of the public attributes.
        start = time.perf_counter()
        generalization: GeneralizationResult | None = None
        prepared = table
        if strategy.generalizes:
            generalization = self._generalization or generalize_table(
                table, significance=resolved.get("significance", DEFAULT_SIGNIFICANCE)
            )
            prepared = generalization.table
        timings["generalize"] = time.perf_counter() - start

        spec = strategy.spec_for(prepared, resolved)
        needs_audit = self._audit and strategy.audits and spec is not None

        # group index: reused when supplied (the service's dataset cache),
        # skipped entirely when neither the audit nor the strategy reads it
        # (e.g. an un-audited whole-table perturbation).
        start = time.perf_counter()
        cached = self._groups is not None
        groups = self._groups
        if groups is None and (strategy.uses_groups or needs_audit):
            groups = personal_groups(prepared)
        timings["group_index"] = time.perf_counter() - start

        # audit: pre-publication test of the prepared table (Corollary 4).
        start = time.perf_counter()
        audit = None
        if needs_audit:
            audit = audit_table(prepared, spec, groups=groups)
        timings["audit"] = time.perf_counter() - start

        # enforce: the strategy's own publishing algorithm, seeded chunks.
        start = time.perf_counter()
        outcome = strategy.enforce(
            prepared, groups, spec, resolved, seed, self._runner, self._chunk_size
        )
        timings["enforce"] = time.perf_counter() - start

        # report: assemble the unified result bundle.  Sampling stats are not
        # copied here — PublishReport derives them from the group records.
        metadata = dict(outcome.metadata)
        if generalization is not None:
            metadata["generalized_domains"] = {
                merge.original.name: {
                    "before": merge.original_domain_size,
                    "after": merge.generalized_domain_size,
                }
                for merge in generalization.merges
            }
        return PublishReport(
            strategy=strategy.name,
            params=resolved,
            seed=seed,
            published=outcome.published,
            prepared=prepared,
            spec=spec,
            generalization=generalization,
            audit=audit,
            groups=outcome.records,
            metadata=metadata,
            timings=timings,
            group_index_cached=cached,
        )


def publish(
    table: Table,
    strategy: str | PublishStrategy = "sps",
    *,
    rng: int | np.random.Generator | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    audit: bool = True,
    groups: GroupIndex | None = None,
    generalization: GeneralizationResult | None = None,
    runner: ChunkRunner | None = None,
    **params: Any,
) -> PublishReport:
    """Publish ``table`` with a named strategy — the library's front door.

    ``repro.publish(table, strategy="sps", lam=0.3, delta=0.3, rng=7)`` runs
    the full prepare → generalize → audit → enforce → report pipeline and
    returns the :class:`~repro.pipeline.report.PublishReport`.  All keyword
    arguments other than the options below are strategy parameters, validated
    against the strategy's typed specs.

    Parameters
    ----------
    table:
        The raw table ``D``.
    strategy:
        Registered strategy name (see
        :func:`~repro.pipeline.strategy.available_strategies`) or an instance.
    rng:
        Seed or generator; a fixed integer seed gives byte-identical output
        through the library and the service for the same ``chunk_size``.
    chunk_size:
        Personal groups per deterministic work chunk.
    audit:
        Set ``False`` to skip the pre-publication audit stage.
    groups, generalization, runner:
        Pre-built artifacts / custom chunk executor (see
        :class:`PublishPipeline`).
    """
    pipeline = (
        PublishPipeline(strategy, **params)
        .with_rng(rng)
        .with_chunk_size(chunk_size)
        .with_audit(audit)
    )
    if groups is not None:
        pipeline.with_groups(groups)
    if generalization is not None:
        pipeline.with_generalization(generalization)
    if runner is not None:
        pipeline.with_runner(runner)
    return pipeline.run(table)
