"""Publishing strategies and the name-based strategy registry.

A :class:`PublishStrategy` is the unit of extension of the publishing stack:
declare a name, typed parameter specs and an ``enforce`` step, register one
instance, and the strategy becomes available to the library
(:func:`repro.publish`), the service backends, the CLI and the HTTP API —
without touching any of them.

Built-in strategies
-------------------

==================  =========================================================
``sps``             the paper's Sampling-Perturbing-Scaling algorithm
``uniform``         plain uniform perturbation (the paper's UP baseline)
``dp-laplace``      per-group Laplace-noisy SA histogram synthesis
``dp-gaussian``     per-group Gaussian-noisy SA histogram synthesis
``generalize+sps``  chi-square NA generalisation followed by SPS
==================  =========================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.core.criterion import PrivacySpec
from repro.core.sps import GroupPublication, sps_publish_groups
from repro.dataset.groups import GroupIndex, PersonalGroup
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.perturbation.uniform import UniformPerturbation
from repro.pipeline.execution import ChunkRunner, seeded_rng
from repro.pipeline.params import ParamSpec, resolve_params

#: Signature of a group-batch publishing kernel: ``fn(chunk_of_groups, rng)``
#: returns the published code block plus the per-group publication records.
GroupChunkFn = Callable[
    [Sequence[PersonalGroup], np.random.Generator],
    tuple[np.ndarray, Sequence[GroupPublication]],
]


class UnknownStrategyError(ValueError):
    """Raised when a strategy name is not in the registry."""


@dataclass(frozen=True)
class StrategyOutcome:
    """What a strategy's enforce stage produced."""

    published: Table
    records: tuple[GroupPublication, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)


class PublishStrategy(ABC):
    """One publishing strategy, selectable by name.

    Subclasses declare their tunable parameters as typed
    :class:`~repro.pipeline.params.ParamSpec` objects in ``params``, plus
    behaviour flags the pipeline consults: ``generalizes`` (whether the
    chi-square generalize stage runs first), ``audits`` (whether the table is
    audited against the strategy's :class:`PrivacySpec` before enforcing) and
    ``uses_groups`` (whether :meth:`enforce` reads the personal-group index —
    declare ``False`` for whole-table strategies so the pipeline can skip the
    index build when the audit is also skipped).
    """

    name: ClassVar[str]
    summary: ClassVar[str] = ""
    params: ClassVar[tuple[ParamSpec, ...]] = ()
    generalizes: ClassVar[bool] = False
    audits: ClassVar[bool] = True
    uses_groups: ClassVar[bool] = True
    #: Whether the strategy's published bytes are a pure function of the input
    #: *row stream* (row order preserved, one output row per input row).  The
    #: streaming engine drives such strategies through a row spool instead of
    #: the group list; only :class:`UniformStrategy` sets this today.
    streams_rows: ClassVar[bool] = False
    #: Explicit opt-out from the streaming engine.  Every concrete strategy
    #: must take a streaming stance — override :meth:`chunk_publisher`,
    #: declare ``streams_rows = True``, or set this to ``False`` — which the
    #: registry-hygiene lint rule (``RPR005``) enforces; silence is not a
    #: stance.  :func:`repro.stream.engine.stream_publish` refuses strategies
    #: that declare ``streamable = False``.
    streamable: ClassVar[bool] = True
    #: Whether the strategy honours the incremental re-publish contract of
    #: :mod:`repro.delta`: its published bytes for a chunk of groups depend
    #: only on that chunk's (SA count vectors, spec, rng) — never on groups
    #: outside the chunk or on global row order — so appending rows lets the
    #: delta engine regenerate only the affected chunks and splice them into
    #: the published CSV, byte-identical to a full re-publish.  True for the
    #: group-kernel strategies (SPS, the DP histograms); ``uniform`` cannot
    #: honour it (its draws walk one global row spool, so any append shifts
    #: every later draw) and ``generalize+sps`` cannot either (one appended
    #: row can flip a chi-square merge decision for the whole table).
    #: :func:`repro.delta.publish_base` refuses strategies that declare
    #: ``delta_capable = False`` loudly rather than silently diverging.
    delta_capable: ClassVar[bool] = False

    def resolve(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Validate ``params`` against the declared specs and fill defaults."""
        return resolve_params(self.params, params, owner=f"strategy {self.name!r}")

    def spec_for(self, table: Table, resolved: Mapping[str, Any]) -> PrivacySpec | None:
        """The privacy spec this strategy enforces on ``table`` (``None`` if none)."""
        return None

    def chunk_publisher(
        self,
        schema: Schema,
        spec: PrivacySpec | None,
        resolved: Mapping[str, Any],
    ) -> GroupChunkFn | None:
        """The group-batch publishing kernel, or ``None`` if not streamable.

        When a strategy's published bytes depend only on the ordered list of
        personal groups (their NA keys and SA count vectors) — true for SPS
        and the DP histogram strategies — it returns
        ``fn(chunk_of_groups, rng) -> (codes_block, group_records)`` here.
        :meth:`enforce` and the out-of-core streaming engine both drive this
        same kernel over deterministic seeded chunks, which is why streaming
        output is byte-identical to the in-memory path for a fixed
        ``(seed, chunk_size)``.  Strategies that need the full table return
        ``None`` (the default) and are rejected by the streaming engine
        unless they declare ``streams_rows``.
        """
        return None

    def metadata_for(self, resolved: Mapping[str, Any]) -> dict[str, Any]:
        """Strategy-specific report metadata (mechanism scales etc.)."""
        return {}

    @abstractmethod
    def enforce(
        self,
        table: Table,
        groups: GroupIndex | None,
        spec: PrivacySpec | None,
        resolved: Mapping[str, Any],
        seed: int,
        runner: ChunkRunner,
        chunk_size: int,
    ) -> StrategyOutcome:
        """Publish ``table`` (the prepared table) and return the outcome.

        ``groups`` is the personal-group index of ``table``; it is ``None``
        only for strategies declaring ``uses_groups = False`` when the audit
        stage was also skipped.  All randomness must flow through generators
        derived from ``seed`` — either via ``runner`` (which hands each chunk
        its own seeded stream) or via ``numpy.random.SeedSequence(seed)``
        directly — so the output is identical however the chunks are executed.
        """


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #

_STRATEGIES: dict[str, PublishStrategy] = {}


def register_strategy(strategy: PublishStrategy, replace: bool = False) -> PublishStrategy:
    """Register a strategy instance under its ``name``."""
    if not getattr(strategy, "name", ""):
        raise ValueError("strategy must declare a non-empty name")
    if strategy.name in _STRATEGIES and not replace:
        raise ValueError(f"strategy {strategy.name!r} is already registered")
    _STRATEGIES[strategy.name] = strategy
    return strategy


def unregister_strategy(name: str) -> None:
    """Remove a strategy from the registry (no-op if absent)."""
    _STRATEGIES.pop(name, None)


def get_strategy(name: str) -> PublishStrategy:
    """Look a strategy up by name (raises :class:`UnknownStrategyError` if absent)."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown strategy {name!r}; available strategies: {available_strategies()}"
        ) from None


def available_strategies() -> list[str]:
    """Sorted names of all registered strategies."""
    return sorted(_STRATEGIES)


def strategy_descriptions() -> dict[str, dict[str, Any]]:
    """Machine-readable description of every strategy (for ``/stats`` and docs)."""
    return {
        name: {
            "summary": strategy.summary,
            "generalizes": strategy.generalizes,
            "audits": strategy.audits,
            "params": [spec.to_json() for spec in strategy.params],
        }
        for name, strategy in sorted(_STRATEGIES.items())
    }


# ---------------------------------------------------------------------- #
# Shared helpers
# ---------------------------------------------------------------------- #

_SPS_PARAMS = (
    ParamSpec.floating(
        "lam", 0.3, minimum=0.0, min_inclusive=False,
        doc="lambda, the relative-error threshold of Definition 3",
    ),
    ParamSpec.floating(
        "delta", 0.3, minimum=0.0, maximum=1.0, min_inclusive=False, max_inclusive=False,
        doc="delta, the minimum tail-probability bound of Definition 3",
    ),
    ParamSpec.floating(
        "retention_probability", 0.5, minimum=0.0, maximum=1.0, min_inclusive=False,
        doc="p, the uniform-perturbation retention probability",
    ),
)


def _spec_from(table: Table, resolved: Mapping[str, Any]) -> PrivacySpec:
    return PrivacySpec(
        lam=resolved["lam"],
        delta=resolved["delta"],
        retention_probability=resolved["retention_probability"],
        domain_size=table.schema.sensitive_domain_size,
    )


def _run_chunk_publisher(
    strategy: "PublishStrategy",
    table: Table,
    groups: GroupIndex,
    spec: PrivacySpec | None,
    resolved: Mapping[str, Any],
    seed: int,
    runner: ChunkRunner,
    chunk_size: int,
) -> tuple[Table, tuple[GroupPublication, ...]]:
    """Drive a strategy's group-batch kernel through ``runner`` and assemble the table.

    The kernel is wrapped in a picklable :class:`~repro.parallel.kernels.StrategyKernel`
    so the runner may be the process-pool scheduler; calling it is
    byte-identical to calling ``strategy.chunk_publisher(...)`` directly.
    """
    from repro.parallel.kernels import StrategyKernel

    chunk_fn = StrategyKernel(strategy, table.schema, spec, dict(resolved))
    chunk_fn.build()  # fail fast on a kernel-less strategy; caches the closure
    n_public = len(table.schema.public)
    results = runner(list(groups), chunk_fn, seed, chunk_size)
    blocks = [codes for codes, _ in results if codes.size]
    records = [record for _, chunk_records in results for record in chunk_records]
    if blocks:
        codes = np.vstack(blocks)
    else:
        codes = np.empty((0, n_public + 1), dtype=np.int64)
    return Table(table.schema, codes), tuple(records)


# ---------------------------------------------------------------------- #
# Built-in strategies
# ---------------------------------------------------------------------- #


class SPSStrategy(PublishStrategy):
    """The paper's SPS enforcement algorithm over the personal-group index."""

    name = "sps"
    summary = "Sampling-Perturbing-Scaling enforcement of (lambda, delta)-privacy"
    params = _SPS_PARAMS
    # Per-chunk draws depend only on the chunk's count vectors and the spec,
    # so appends re-run only the touched chunks.
    delta_capable = True

    def spec_for(self, table: Table, resolved: Mapping[str, Any]) -> PrivacySpec:
        return _spec_from(table, resolved)

    def chunk_publisher(
        self,
        schema: Schema,
        spec: PrivacySpec | None,
        resolved: Mapping[str, Any],
    ) -> GroupChunkFn:
        assert spec is not None  # spec_for always returns one for SPS
        perturbation = UniformPerturbation(spec.retention_probability, spec.domain_size)
        n_public = len(schema.public)

        def chunk_fn(
            chunk: Sequence[PersonalGroup], rng: np.random.Generator
        ) -> tuple[np.ndarray, list[GroupPublication]]:
            return sps_publish_groups(chunk, spec, rng, n_public, perturbation)

        return chunk_fn

    def enforce(
        self,
        table: Table,
        groups: GroupIndex | None,
        spec: PrivacySpec | None,
        resolved: Mapping[str, Any],
        seed: int,
        runner: ChunkRunner,
        chunk_size: int,
    ) -> StrategyOutcome:
        assert groups is not None  # uses_groups strategies always get the index
        published, records = _run_chunk_publisher(
            self, table, groups, spec, resolved, seed, runner, chunk_size
        )
        return StrategyOutcome(published=published, records=records)


class GeneralizeSPSStrategy(SPSStrategy):
    """Chi-square generalisation of the public attributes followed by SPS.

    This is the paper's full publishing pipeline (Sections 3.4 + 5): merge
    NA values with the same SA impact first, then enforce the criterion on
    the generalised personal groups.  The generalize stage itself is run by
    the pipeline; this strategy only adds the ``significance`` knob and the
    ``generalizes`` flag.
    """

    name = "generalize+sps"
    summary = "chi-square NA generalisation followed by SPS enforcement"
    generalizes = True
    # One appended row can flip a chi-square merge decision, re-keying every
    # group — incremental splicing cannot bound the affected set.
    delta_capable = False
    params = _SPS_PARAMS + (
        ParamSpec.floating(
            "significance", 0.05, minimum=0.0, maximum=1.0,
            min_inclusive=False, max_inclusive=False,
            doc="significance level of the chi-square merging test",
        ),
    )


class UniformStrategy(PublishStrategy):
    """Plain uniform perturbation (the UP baseline), audited but never sampled.

    Perturbation is a single vectorised whole-table pass, so the chunk runner
    is not used; the output preserves the input row order.
    """

    name = "uniform"
    summary = "plain uniform perturbation of the sensitive attribute (UP baseline)"
    params = _SPS_PARAMS
    uses_groups = False
    streams_rows = True
    # Draws walk one global row spool: appending a row shifts every later
    # draw, so there is no bounded affected set to splice.
    delta_capable = False

    def spec_for(self, table: Table, resolved: Mapping[str, Any]) -> PrivacySpec:
        return _spec_from(table, resolved)

    def enforce(
        self,
        table: Table,
        groups: GroupIndex | None,
        spec: PrivacySpec | None,
        resolved: Mapping[str, Any],
        seed: int,
        runner: ChunkRunner,
        chunk_size: int,
    ) -> StrategyOutcome:
        assert spec is not None  # spec_for always returns one for uniform
        operator = UniformPerturbation(spec.retention_probability, spec.domain_size)
        rng = seeded_rng(seed)
        return StrategyOutcome(published=operator.perturb_table(table, rng))


class _DPHistogramStrategy(PublishStrategy):
    """Shared machinery of the DP strategies: noisy per-group SA histograms.

    For each personal group, add independent noise to its SA count vector,
    clamp to non-negative integers and emit that many records per value.  The
    NA key structure is preserved exactly (as the paper's model requires);
    only the per-group SA histograms are privatised.
    """

    audits = False
    # Noise is drawn per group from the chunk's generator; appends re-run
    # only the touched chunks.
    delta_capable = True

    def _mechanism(self, resolved: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def _mechanism_metadata(self, mechanism: Any) -> dict[str, Any]:
        raise NotImplementedError

    def metadata_for(self, resolved: Mapping[str, Any]) -> dict[str, Any]:
        return self._mechanism_metadata(self._mechanism(resolved))

    def chunk_publisher(
        self,
        schema: Schema,
        spec: PrivacySpec | None,
        resolved: Mapping[str, Any],
    ) -> GroupChunkFn:
        mechanism = self._mechanism(resolved)
        m = schema.sensitive_domain_size
        n_public = len(schema.public)

        def chunk_fn(
            chunk: Sequence[PersonalGroup], rng: np.random.Generator
        ) -> tuple[np.ndarray, tuple[GroupPublication, ...]]:
            blocks: list[np.ndarray] = []
            for group in chunk:
                noisy = np.asarray(
                    mechanism.add_noise(group.sensitive_counts.astype(float), rng)
                )
                counts = np.maximum(0, np.rint(noisy)).astype(np.int64)
                codes = np.repeat(np.arange(m, dtype=np.int64), counts)
                if codes.size == 0:
                    continue
                block = np.empty((codes.size, n_public + 1), dtype=np.int64)
                block[:, :n_public] = np.asarray(group.key, dtype=np.int64)
                block[:, n_public] = codes
                blocks.append(block)
            if blocks:
                return np.vstack(blocks), ()
            return np.empty((0, n_public + 1), dtype=np.int64), ()

        return chunk_fn

    def enforce(
        self,
        table: Table,
        groups: GroupIndex | None,
        spec: PrivacySpec | None,
        resolved: Mapping[str, Any],
        seed: int,
        runner: ChunkRunner,
        chunk_size: int,
    ) -> StrategyOutcome:
        assert groups is not None  # uses_groups strategies always get the index
        published, _ = _run_chunk_publisher(
            self, table, groups, spec, resolved, seed, runner, chunk_size
        )
        return StrategyOutcome(
            published=published,
            metadata=self.metadata_for(resolved),
        )


class DPLaplaceStrategy(_DPHistogramStrategy):
    """Laplace-mechanism histogram publication (epsilon-DP per count)."""

    name = "dp-laplace"
    summary = "per-group Laplace-noisy SA histogram synthesis (epsilon-DP)"
    params = (
        ParamSpec.floating(
            "epsilon", 1.0, minimum=0.0, min_inclusive=False,
            doc="epsilon, the differential-privacy budget per count",
        ),
        ParamSpec.floating(
            "sensitivity", 1.0, minimum=0.0, min_inclusive=False,
            doc="the count-query sensitivity Delta",
        ),
    )

    def _mechanism(self, resolved: Mapping[str, Any]) -> LaplaceMechanism:
        return LaplaceMechanism(resolved["epsilon"], sensitivity=resolved["sensitivity"])

    def _mechanism_metadata(self, mechanism: Any) -> dict[str, Any]:
        return {"scale": mechanism.scale, "noise_variance": mechanism.variance}


class DPGaussianStrategy(_DPHistogramStrategy):
    """Gaussian-mechanism histogram publication ((epsilon, delta)-DP per count)."""

    name = "dp-gaussian"
    summary = "per-group Gaussian-noisy SA histogram synthesis ((epsilon, delta)-DP)"
    params = (
        ParamSpec.floating(
            "epsilon", 1.0, minimum=0.0, min_inclusive=False,
            doc="epsilon, the differential-privacy budget per count",
        ),
        ParamSpec.floating(
            "dp_delta", 1e-5, minimum=0.0, maximum=1.0,
            min_inclusive=False, max_inclusive=False,
            doc="delta of the (epsilon, delta)-DP guarantee",
        ),
        ParamSpec.floating(
            "sensitivity", 1.0, minimum=0.0, min_inclusive=False,
            doc="the count-query sensitivity Delta",
        ),
    )

    def _mechanism(self, resolved: Mapping[str, Any]) -> GaussianMechanism:
        return GaussianMechanism(
            resolved["epsilon"], resolved["dp_delta"], sensitivity=resolved["sensitivity"]
        )

    def _mechanism_metadata(self, mechanism: Any) -> dict[str, Any]:
        return {"sigma": mechanism.sigma, "noise_variance": mechanism.variance}


for _strategy in (
    SPSStrategy(),
    UniformStrategy(),
    DPLaplaceStrategy(),
    DPGaussianStrategy(),
    GeneralizeSPSStrategy(),
):
    register_strategy(_strategy)
