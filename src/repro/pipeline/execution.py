"""Deterministic chunked execution shared by the library and the service.

The pipeline's reproducibility contract is: *the published table depends only
on the seed and the chunk size, never on how the chunks are executed*.  That
holds because

1. the group list is split into fixed-size chunks **before** any work runs;
2. each chunk gets its own child generator derived from
   ``numpy.random.SeedSequence(seed).spawn(n_chunks)`` (the spawn tree is a
   pure function of the root seed);
3. chunk outputs are concatenated in chunk order, whatever order the chunks
   were actually processed in.

The library runs chunks inline through :func:`run_chunks_serial`; the service
substitutes the shared scheduler's runner (:func:`repro.service.parallel.run_chunked`)
through the same :data:`ChunkRunner` signature, which is why the library and
the service produce byte-identical output for the same seed.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

#: Default number of personal groups per work chunk.
DEFAULT_CHUNK_SIZE = 256

#: Default number of CSV records per ingestion chunk of the streaming engine
#: (:mod:`repro.stream`); bounds peak memory of an out-of-core publish.
DEFAULT_CHUNK_ROWS = 32_768

#: Signature of a chunk executor: ``runner(items, chunk_fn, seed, chunk_size)``
#: must return ``chunk_fn(chunk, rng)`` results in chunk order.
ChunkRunner = Callable[
    [Sequence[Any], Callable[[Sequence[Any], np.random.Generator], Any], int, int],
    list[Any],
]


def chunk_items(items: Sequence[T], chunk_size: int) -> list[Sequence[T]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``.

    >>> chunk_items([1, 2, 3, 4, 5], 2)
    [[1, 2], [3, 4], [5]]
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]


def chunk_rngs(seed: int, n_chunks: int) -> list[np.random.Generator]:
    """Derive one independent, reproducible generator per chunk from ``seed``.

    The spawn tree is a pure function of the root seed, so the same seed
    always yields generators producing the same streams:

    >>> a, b = chunk_rngs(7, 2), chunk_rngs(7, 2)
    >>> [x.random() for x in a] == [y.random() for y in b]
    True
    """
    if n_chunks == 0:
        return []
    children = np.random.SeedSequence(seed).spawn(n_chunks)
    return [np.random.default_rng(child) for child in children]


def seeded_rng(seed: int) -> np.random.Generator:
    """The sanctioned whole-table generator for root seed ``seed``.

    Single-pass strategies (whole-table perturbation, the streaming row
    path) draw from this one generator instead of the per-chunk spawn tree;
    routing construction through here keeps generator creation inside the
    seeding module, which is what the RNG-discipline lint rule (``RPR001``)
    enforces.

    >>> seeded_rng(7).random() == seeded_rng(7).random()
    True
    """
    return np.random.default_rng(np.random.SeedSequence(seed))


def run_chunks_serial(
    items: Sequence[T],
    chunk_fn: Callable[[Sequence[T], np.random.Generator], R],
    seed: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[R]:
    """Apply ``chunk_fn(chunk, rng)`` to every chunk inline, in chunk order.

    This is both the library's default executor and the sequential reference
    the service's pool runner is tested against.

    >>> run_chunks_serial([1, 2, 3], lambda chunk, rng: sum(chunk), seed=0, chunk_size=2)
    [3, 3]
    """
    chunks = chunk_items(items, chunk_size)
    rngs = chunk_rngs(seed, len(chunks))
    return [chunk_fn(chunk, rng) for chunk, rng in zip(chunks, rngs, strict=True)]


def coerce_seed(rng: int | np.random.Generator | None = None) -> int:
    """Normalise an ``rng`` argument into the integer root seed of the spawn tree.

    ``None`` draws fresh entropy; an integer is used as-is; an existing
    generator deterministically yields one 63-bit seed (so passing the same
    generator state twice gives the same published table).

    >>> coerce_seed(42)
    42
    >>> import numpy as np
    >>> coerce_seed(np.random.default_rng(0)) == coerce_seed(np.random.default_rng(0))
    True
    """
    if rng is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63 - 1))
    return operator.index(rng)
