"""Typed, validated strategy parameters.

Every :class:`~repro.pipeline.strategy.PublishStrategy` declares its tunable
knobs as a tuple of :class:`ParamSpec` objects.  A spec carries the declared
type (``float``, ``int``, ``bool`` or ``str``), the default value, and an
optional range or choice constraint, so parameter resolution

* preserves declared types (an ``int`` knob stays an ``int`` instead of being
  silently coerced to ``float``),
* rejects unknown names, mistyped values and out-of-range values with one
  clear :class:`ParamError` naming the offending parameter, and
* produces machine-readable descriptions for the CLI, the HTTP API and docs.
"""

from __future__ import annotations

import math
import numbers
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

#: Parameter kinds a spec may declare.
KINDS = ("float", "int", "bool", "str")


class ParamError(ValueError):
    """Raised when strategy parameters fail validation."""


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter: its name, type, default and constraints.

    Parameters
    ----------
    name:
        The parameter name callers use.
    default:
        The value used when the caller does not supply one; it must itself
        satisfy the spec.
    kind:
        One of ``float``, ``int``, ``bool``, ``str``.
    minimum, maximum:
        Optional numeric bounds (ignored for ``bool``/``str`` kinds).
    min_inclusive, max_inclusive:
        Whether each bound is attainable (``[`` / ``]`` versus ``(`` / ``)``).
    choices:
        Optional closed set of admissible values (``str`` kinds mostly).
    doc:
        One-line human description, echoed in range errors so messages name
        the paper's symbol (e.g. ``lambda``) and not only the keyword.
    """

    name: str
    default: Any
    kind: str = "float"
    minimum: float | None = None
    maximum: float | None = None
    min_inclusive: bool = True
    max_inclusive: bool = True
    choices: tuple[Any, ...] | None = None
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"parameter kind must be one of {KINDS}, got {self.kind!r}")
        # Defaults must satisfy their own spec, so a bad declaration fails at
        # class-definition time instead of on the first request; the coerced
        # value is stored so the default carries the declared type too
        # (e.g. integer("n", 2.0) resolves to int 2).
        object.__setattr__(self, "default", self.coerce(self.default, owner="default of"))

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def floating(cls, name: str, default: float, **kwargs: Any) -> "ParamSpec":
        """A ``float`` parameter."""
        return cls(name=name, default=default, kind="float", **kwargs)

    @classmethod
    def integer(cls, name: str, default: int, **kwargs: Any) -> "ParamSpec":
        """An ``int`` parameter (kept integral through resolution)."""
        return cls(name=name, default=default, kind="int", **kwargs)

    @classmethod
    def boolean(cls, name: str, default: bool, **kwargs: Any) -> "ParamSpec":
        """A ``bool`` parameter."""
        return cls(name=name, default=default, kind="bool", **kwargs)

    @classmethod
    def string(cls, name: str, default: str, **kwargs: Any) -> "ParamSpec":
        """A ``str`` parameter, usually with ``choices``."""
        return cls(name=name, default=default, kind="str", **kwargs)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def range_text(self) -> str:
        """The admissible interval as mathematical notation, e.g. ``(0, 1]``."""
        lo = "-inf" if self.minimum is None else f"{self.minimum:g}"
        hi = "inf" if self.maximum is None else f"{self.maximum:g}"
        left = "[" if self.min_inclusive and self.minimum is not None else "("
        right = "]" if self.max_inclusive and self.maximum is not None else ")"
        return f"{left}{lo}, {hi}{right}"

    def coerce(self, value: Any, owner: str = "") -> Any:
        """Validate ``value`` against this spec and return it with the declared type."""
        label = f"{owner} parameter {self.name!r}" if owner else f"parameter {self.name!r}"
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ParamError(f"{label} must be a boolean, got {value!r}")
            out: Any = value
        elif self.kind == "str":
            if not isinstance(value, str):
                raise ParamError(f"{label} must be a string, got {value!r}")
            out = value
        elif self.kind == "int":
            # Numeric strings are accepted (HTTP/CLI clients often send
            # "7"); anything else must already be integral.
            if isinstance(value, str):
                try:
                    value = float(value)
                except ValueError:
                    raise ParamError(f"{label} must be an integer, got {value!r}") from None
            if (
                isinstance(value, bool)
                or not isinstance(value, numbers.Real)
                or not float(value).is_integer()
            ):
                raise ParamError(f"{label} must be an integer, got {value!r}")
            out = int(value)
        else:  # float
            if isinstance(value, str):
                try:
                    value = float(value)
                except ValueError:
                    raise ParamError(f"{label} must be a number, got {value!r}") from None
            if (
                isinstance(value, bool)
                or not isinstance(value, numbers.Real)
                or not math.isfinite(float(value))
            ):
                raise ParamError(f"{label} must be a number, got {value!r}")
            out = float(value)
        if self.choices is not None and out not in self.choices:
            raise ParamError(
                f"{label} must be one of {sorted(map(repr, self.choices))}, got {value!r}"
            )
        if self.kind in ("int", "float"):
            below = self.minimum is not None and (
                out < self.minimum or (not self.min_inclusive and out == self.minimum)
            )
            above = self.maximum is not None and (
                out > self.maximum or (not self.max_inclusive and out == self.maximum)
            )
            if below or above:
                doc = f" ({self.doc})" if self.doc else ""
                raise ParamError(
                    f"{label}{doc} must lie in {self.range_text()}, got {value!r}"
                )
        return out

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible description of the spec (for ``/stats`` and docs)."""
        data: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "default": self.default,
            "doc": self.doc,
        }
        if self.minimum is not None or self.maximum is not None:
            data["range"] = self.range_text()
        if self.choices is not None:
            data["choices"] = list(self.choices)
        return data


def resolve_params(
    specs: Sequence[ParamSpec], params: Mapping[str, Any], owner: str
) -> dict[str, Any]:
    """Merge ``params`` over the spec defaults, validating every supplied value.

    Unknown names are rejected so typos fail loudly instead of silently
    publishing with defaults; supplied values are coerced to their declared
    type and range-checked.  ``owner`` names the caller in error messages
    (e.g. ``"strategy 'sps'"``).
    """
    by_name = {spec.name: spec for spec in specs}
    unknown = set(params) - set(by_name)
    if unknown:
        raise ParamError(
            f"{owner} does not accept parameters {sorted(unknown)}; "
            f"known parameters: {sorted(by_name)}"
        )
    resolved = {spec.name: spec.default for spec in specs}
    for key, value in params.items():
        resolved[key] = by_name[key].coerce(value, owner)
    return resolved
