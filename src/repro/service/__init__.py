"""Anonymization-as-a-service on top of the repro library.

The service layer turns the one-shot publishing API into a long-lived
register-once/publish-many system:

* :mod:`repro.service.backends` — thin :class:`StrategyBackend` adapters
  exposing every :mod:`repro.pipeline` strategy (``sps``, ``uniform``,
  ``dp-laplace``, ``dp-gaussian``, ``generalize+sps``, and any strategy
  registered later) behind the service's name-based registry;
* :mod:`repro.service.registry` — the dataset registry (with cached
  personal-group indexes) and the job store, with JSON snapshot persistence;
* :mod:`repro.service.parallel` — deterministic chunked fan-out over
  ``concurrent.futures`` (same seed ⇒ identical output at any worker count);
* :mod:`repro.service.engine` — :class:`AnonymizationService`, the facade
  executing publish/audit jobs;
* :mod:`repro.service.http_api` — the stdlib ``ThreadingHTTPServer`` JSON
  API;
* :mod:`repro.service.cli` — ``python -m repro.service`` / ``repro-service``.
"""

from repro.service.backends import (
    AnonymizerBackend,
    BackendResult,
    StrategyBackend,
    available_backends,
    backend_descriptions,
    get_backend,
    register_backend,
)
from repro.service.engine import AnonymizationService
from repro.service.http_api import make_server, serve
from repro.service.models import AuditSummary, JobRecord, JobSpec, JobTimings
from repro.service.registry import (
    DatasetEntry,
    DatasetRegistry,
    JobStore,
    NotFoundError,
    ServiceError,
)

__all__ = [
    "AnonymizationService",
    "AnonymizerBackend",
    "AuditSummary",
    "BackendResult",
    "DatasetEntry",
    "DatasetRegistry",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "JobTimings",
    "NotFoundError",
    "ServiceError",
    "StrategyBackend",
    "available_backends",
    "backend_descriptions",
    "get_backend",
    "make_server",
    "register_backend",
    "serve",
]
