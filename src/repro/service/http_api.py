"""Stdlib JSON-over-HTTP front end for the anonymization service.

Built on ``http.server.ThreadingHTTPServer`` only — no third-party web
framework — so the service runs anywhere the library does.  The routing
table itself lives in :class:`repro.serve.router.ServiceRouter`, shared
with the asyncio serving front end (:mod:`repro.serve.frontend`); this
module is just the threading transport around it.  Attach a
:class:`repro.serve.cache.ResponseCache` to the service and this front end
serves cached audit/dataset reads too.

Endpoints
---------

====== ========================== ==========================================
GET    ``/``                      service overview (datasets, jobs, backends)
GET    ``/health``                liveness probe (``/healthz`` is an alias)
GET    ``/stats``                 counters: version, jobs, cache hits, backends
GET    ``/metrics``               process metrics in Prometheus text format
GET    ``/datasets``              list registered datasets
POST   ``/datasets``              register a CSV body (``?name=&sensitive=``)
GET    ``/datasets/<name>``       one dataset's detail
POST   ``/publish``               run a publish job (JSON body); pass
                                  ``"stream": true`` with ``source`` and
                                  ``sensitive`` for an out-of-core job, or
                                  ``"delta": true`` with ``name``, ``source``,
                                  ``sensitive`` and ``output`` to create a
                                  delta-re-publishable dataset
POST   ``/datasets/<name>/rows``  append rows to a delta dataset: runs an
                                  incremental delta-publish job (only the
                                  affected kernel chunks re-run, spliced into
                                  the published CSV atomically) with live
                                  progress and timeline events
GET    ``/jobs``                  list job records
GET    ``/jobs/<id>``             one job record (stream jobs include live
                                  ``progress`` while running, and every job
                                  carries its persisted ``events`` timeline)
GET    ``/jobs/<id>/table.csv``   download a job's published table
GET    ``/audit``                 audit a dataset (query parameters)
POST   ``/audit``                 audit a dataset (JSON body)
====== ========================== ==========================================

Client errors surface as ``{"error": ...}`` with status 400 (bad request) or
404 (unknown dataset/job/route).
"""

from __future__ import annotations

import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro import __version__
from repro.service.engine import AnonymizationService

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.serve.router itself imports the
    # service engine, and this module is pulled in by repro.service's
    # package init — a module-level import here would re-enter that
    # half-initialised package when repro.serve is imported first.
    from repro.serve.router import ServiceRouter

_log = logging.getLogger("repro.service")


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's :class:`ServiceRouter`."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-service/{__version__}"

    @property
    def service(self) -> AnonymizationService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def router(self) -> "ServiceRouter":
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        # The socket file streams straight into the router, so large CSV
        # uploads never buffer fully in memory.
        result = self.router.handle(method, self.path, self.rfile, length)
        if result.close:
            self.close_connection = True
        self.send_response(result.status)
        self.send_header("Content-Type", result.content_type)
        self.send_header("Content-Length", str(result.content_length))
        for name, value in result.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(result.body)


def make_server(
    service: AnonymizationService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (but do not start) the threaded HTTP server for ``service``.

    Pass ``port=0`` to bind an ephemeral port; the chosen port is available
    as ``server.server_address[1]``.
    """
    from repro.serve.router import ServiceRouter

    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    server.router = ServiceRouter(service)  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    service: AnonymizationService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = True,
) -> None:
    """Serve ``service`` until interrupted."""
    server = make_server(service, host, port, verbose=verbose)
    actual_host, actual_port = server.server_address[:2]
    _log.info("repro-service listening on http://%s:%s", actual_host, actual_port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        if service.snapshot_path is not None:
            # Every mutation was persisted write-through as it happened; this
            # is a final checkpoint (a flush for the JSON backend, a no-op
            # for SQLite) before the store closes.
            path = service.save()
            _log.info("state saved to %s", path)
        service.close()
