"""Stdlib JSON-over-HTTP front end for the anonymization service.

Built on ``http.server.ThreadingHTTPServer`` only — no third-party web
framework — so the service runs anywhere the library does.

Endpoints
---------

====== ========================== ==========================================
GET    ``/``                      service overview (datasets, jobs, backends)
GET    ``/health``                liveness probe (``/healthz`` is an alias)
GET    ``/stats``                 counters: version, jobs, cache hits, backends
GET    ``/metrics``               process metrics in Prometheus text format
GET    ``/datasets``              list registered datasets
POST   ``/datasets``              register a CSV body (``?name=&sensitive=``)
GET    ``/datasets/<name>``       one dataset's detail
POST   ``/publish``               run a publish job (JSON body); pass
                                  ``"stream": true`` with ``source`` and
                                  ``sensitive`` for an out-of-core job, or
                                  ``"delta": true`` with ``name``, ``source``,
                                  ``sensitive`` and ``output`` to create a
                                  delta-re-publishable dataset
POST   ``/datasets/<name>/rows``  append rows to a delta dataset: runs an
                                  incremental delta-publish job (only the
                                  affected kernel chunks re-run, spliced into
                                  the published CSV atomically) with live
                                  progress and timeline events
GET    ``/jobs``                  list job records
GET    ``/jobs/<id>``             one job record (stream jobs include live
                                  ``progress`` while running, and every job
                                  carries its persisted ``events`` timeline)
GET    ``/jobs/<id>/table.csv``   download a job's published table
GET    ``/audit``                 audit a dataset (query parameters)
POST   ``/audit``                 audit a dataset (JSON body)
====== ========================== ==========================================

Client errors surface as ``{"error": ...}`` with status 400 (bad request) or
404 (unknown dataset/job/route).
"""

from __future__ import annotations

import csv
import io
import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.obs.environment import record_build_info
from repro.obs.export import render_prometheus
from repro.service.engine import AnonymizationService
from repro.service.parallel import DEFAULT_CHUNK_SIZE
from repro.service.registry import NotFoundError, ServiceError

_log = logging.getLogger("repro.service")


def _as_int(value: Any, name: str) -> int:
    """Coerce a JSON field to int, mapping bad types to a client error."""
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ServiceError(f"{name!r} must be an integer, got {value!r}") from None


def _as_float(value: Any, name: str) -> float:
    """Coerce a JSON field to float, mapping bad types to a client error."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ServiceError(f"{name!r} must be a number, got {value!r}") from None


def _workers_field(body: dict[str, Any]) -> Any:
    """The request's worker count: ``workers``, or legacy ``max_workers``."""
    if "workers" in body:
        return body["workers"]
    return body.get("max_workers", 1)


class _LimitedReader(io.RawIOBase):
    """Raw stream exposing at most ``limit`` bytes of an underlying file."""

    def __init__(self, raw: Any, limit: int) -> None:
        self._raw = raw
        self._remaining = max(0, int(limit))

    def readable(self) -> bool:
        return True

    def readinto(self, buffer: Any) -> int:  # type: ignore[override]
        if self._remaining <= 0:
            return 0
        view = memoryview(buffer)[: self._remaining]
        chunk = self._raw.read(len(view))
        if not chunk:
            self._remaining = 0
            return 0
        view[: len(chunk)] = chunk
        self._remaining -= len(chunk)
        return len(chunk)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's :class:`AnonymizationService`."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-service/{__version__}"

    @property
    def service(self) -> AnonymizationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # Response helpers
    # ------------------------------------------------------------------ #
    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        # An error can fire before the request body was consumed (e.g. a CSV
        # upload rejected on its query parameters); a reused keep-alive
        # connection would then parse the leftover body as the next request
        # line.  Closing the connection keeps the protocol state clean.
        self.close_connection = True
        body = json.dumps({"error": message}).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ServiceError("request body must be a JSON object")
        return data

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = {key: values[-1] for key, values in parse_qs(url.query).items()}
        try:
            handled = self._route(method, parts, query)
        except NotFoundError as exc:
            self._send_error_json(str(exc), 404)
            return
        except ServiceError as exc:
            self._send_error_json(str(exc), 400)
            return
        except ValueError as exc:
            self._send_error_json(str(exc), 400)
            return
        if not handled:
            self._send_error_json(f"no route for {method} {url.path}", 404)

    def _route(self, method: str, parts: list[str], query: dict[str, str]) -> bool:
        if method == "GET":
            if not parts:
                self._send_json(self.service.describe())
                return True
            if parts in (["health"], ["healthz"]):
                self._send_json({"status": "ok", "version": __version__})
                return True
            if parts == ["stats"]:
                self._send_json(self.service.stats())
                return True
            if parts == ["metrics"]:
                self._send_metrics()
                return True
            if parts == ["datasets"]:
                self._send_json(
                    [entry.to_json() for entry in self.service.datasets.entries()]
                )
                return True
            if len(parts) == 2 and parts[0] == "datasets":
                self._send_json(self.service.datasets.get(parts[1]).to_json())
                return True
            if parts == ["jobs"]:
                self._send_json(
                    [record.to_json() for record in self.service.jobs.records()]
                )
                return True
            if len(parts) == 2 and parts[0] == "jobs":
                self._send_json(self.service.job(parts[1]).to_json())
                return True
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "table.csv":
                self._send_published_csv(parts[1])
                return True
            if parts == ["audit"]:
                self._handle_audit(query)
                return True
            return False
        if method == "POST":
            if parts == ["datasets"]:
                self._handle_register(query)
                return True
            if len(parts) == 3 and parts[0] == "datasets" and parts[2] == "rows":
                self._handle_append_rows(parts[1])
                return True
            if parts == ["publish"]:
                self._handle_publish()
                return True
            if parts == ["audit"]:
                self._handle_audit(self._read_json_body())
                return True
            return False
        return False

    # ------------------------------------------------------------------ #
    # Endpoint bodies
    # ------------------------------------------------------------------ #
    def _handle_register(self, query: dict[str, str]) -> None:
        name = query.get("name")
        sensitive = query.get("sensitive")
        if not name or not sensitive:
            raise ServiceError(
                "POST /datasets requires ?name= and ?sensitive= query parameters "
                "and a CSV request body"
            )
        replace = query.get("replace", "").lower() in {"1", "true", "yes"}
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("POST /datasets requires a non-empty CSV body")
        stream = io.TextIOWrapper(
            io.BufferedReader(_LimitedReader(self.rfile, length)),
            encoding="utf-8",
            newline="",
        )
        entry = self.service.register_csv(name, stream, sensitive, replace=replace)
        self._send_json(entry.to_json(), status=201)

    def _handle_append_rows(self, name: str) -> None:
        body = self._read_json_body()
        rows = body.get("rows")
        source = body.get("source")
        if rows is not None:
            if not isinstance(rows, list) or not all(
                isinstance(row, list) and all(isinstance(v, str) for v in row)
                for row in rows
            ):
                raise ServiceError(
                    "'rows' must be a list of rows (lists of strings) in the "
                    "dataset's header column order"
                )
        record = self.service.append_rows(
            name,
            rows=rows,
            source=str(source) if source is not None else None,
            workers=_as_int(_workers_field(body), "workers"),
        )
        self._send_json(record.to_json(), status=201)

    def _handle_publish(self) -> None:
        body = self._read_json_body()
        backend = body.get("backend")
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise ServiceError("'params' must be a JSON object")
        if body.get("delta"):
            # Delta base publish: like a stream job, but the service keeps
            # the resulting DeltaState so POST /datasets/<name>/rows can
            # splice appends into the published CSV incrementally.
            name = body.get("name")
            source = body.get("source")
            sensitive = body.get("sensitive")
            output = body.get("output")
            if not name or not source or not sensitive or not backend or not output:
                raise ServiceError(
                    "delta publish requires 'name', 'source', 'sensitive', "
                    "'backend' and 'output' fields"
                )
            chunk_rows = body.get("chunk_rows")
            record = self.service.publish_delta_base(
                name=str(name),
                source=str(source),
                sensitive=str(sensitive),
                backend=str(backend),
                output=str(output),
                params=params,
                seed=_as_int(body.get("seed", 0), "seed"),
                chunk_size=_as_int(body.get("chunk_size", DEFAULT_CHUNK_SIZE), "chunk_size"),
                chunk_rows=_as_int(chunk_rows, "chunk_rows") if chunk_rows is not None else None,
                workers=_as_int(_workers_field(body), "workers"),
                replace=bool(body.get("replace", False)),
            )
            self._send_json(record.to_json(), status=201)
            return
        if body.get("stream"):
            # Out-of-core job mode: publish straight from a server-side CSV
            # path in bounded-memory chunks; GET /jobs/<id> shows progress
            # while the job runs.  Paths resolve on the server with the
            # service's privileges (same trust level as the CLI); at least
            # refuse to clobber existing files so a client cannot truncate
            # an arbitrary path by naming it as 'output'.
            source = body.get("source")
            sensitive = body.get("sensitive")
            if not source or not sensitive or not backend:
                raise ServiceError(
                    "stream publish requires 'source', 'sensitive' and 'backend' fields"
                )
            output = body.get("output")
            if output and Path(output).exists():
                raise ServiceError(
                    f"output path {str(output)!r} already exists on the server; "
                    "stream jobs only write new files"
                )
            chunk_rows = body.get("chunk_rows")
            record = self.service.publish_stream(
                source=str(source),
                sensitive=str(sensitive),
                backend=str(backend),
                params=params,
                seed=_as_int(body.get("seed", 0), "seed"),
                chunk_size=_as_int(body.get("chunk_size", DEFAULT_CHUNK_SIZE), "chunk_size"),
                chunk_rows=_as_int(chunk_rows, "chunk_rows") if chunk_rows is not None else None,
                workers=_as_int(_workers_field(body), "workers"),
                output=output,
            )
            self._send_json(record.to_json(), status=201)
            return
        dataset = body.get("dataset")
        if not dataset or not backend:
            raise ServiceError("POST /publish requires 'dataset' and 'backend' fields")
        record = self.service.publish(
            dataset=str(dataset),
            backend=str(backend),
            params=params,
            seed=_as_int(body.get("seed", 0), "seed"),
            chunk_size=_as_int(body.get("chunk_size", DEFAULT_CHUNK_SIZE), "chunk_size"),
            max_workers=_as_int(_workers_field(body), "workers"),
        )
        self._send_json(record.to_json(), status=201)

    def _handle_audit(self, args: dict[str, Any]) -> None:
        dataset = args.get("dataset")
        if not dataset:
            raise ServiceError("audit requires a 'dataset' argument")
        self._send_json(
            self.service.audit(
                dataset=str(dataset),
                lam=_as_float(args.get("lam", 0.3), "lam"),
                delta=_as_float(args.get("delta", 0.3), "delta"),
                retention_probability=_as_float(
                    args.get("retention_probability", args.get("p", 0.5)),
                    "retention_probability",
                ),
            )
        )

    def _send_metrics(self) -> None:
        """Render the process metrics registry as Prometheus text exposition."""
        # Refresh the info gauge on every scrape: cheap, and it guarantees
        # the environment labels are present even on a cold process.
        record_build_info()
        body = render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_published_csv(self, job_id: str) -> None:
        table = self.service.published_table(job_id)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(list(table.schema.public_names) + [table.schema.sensitive_name])
        writer.writerows(table.records())
        body = buffer.getvalue().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/csv")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def make_server(
    service: AnonymizationService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (but do not start) the threaded HTTP server for ``service``.

    Pass ``port=0`` to bind an ephemeral port; the chosen port is available
    as ``server.server_address[1]``.
    """
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    service: AnonymizationService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = True,
) -> None:
    """Serve ``service`` until interrupted."""
    server = make_server(service, host, port, verbose=verbose)
    actual_host, actual_port = server.server_address[:2]
    _log.info("repro-service listening on http://%s:%s", actual_host, actual_port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        if service.snapshot_path is not None:
            # Every mutation was persisted write-through as it happened; this
            # is a final checkpoint (a flush for the JSON backend, a no-op
            # for SQLite) before the store closes.
            path = service.save()
            _log.info("state saved to %s", path)
        service.close()
