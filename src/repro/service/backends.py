"""Service backends: thin adapters over the core strategy registry.

Since the strategy logic moved into :mod:`repro.pipeline`, a service backend
no longer implements any publishing algorithm of its own.
:class:`StrategyBackend` wraps one registered
:class:`~repro.pipeline.strategy.PublishStrategy` and contributes only the
service concerns:

* wiring the :class:`~repro.service.registry.DatasetEntry` caches (group
  index, per-significance generalisation) into the pipeline;
* substituting the shared scheduler's chunk runner
  (:func:`repro.service.parallel.run_chunked`, a process pool by default)
  so publish jobs fan out over ``max_workers`` workers while staying
  byte-identical to the library path for the same ``(seed, chunk_size)``;
* translating :class:`~repro.pipeline.params.ParamError` into
  :class:`~repro.service.registry.ServiceError` for the HTTP/CLI layers.

Every core strategy is exposed automatically — including strategies
registered *after* this module was imported (:func:`get_backend` adapts them
lazily), so "register a strategy once, get it in the library, the CLI and the
HTTP API" holds.  Service-only backends that bypass the pipeline can still
subclass :class:`AnonymizerBackend` directly and call
:func:`register_backend`.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.core.testing import PrivacyAudit
from repro.dataset.table import Table
from repro.generalization.chi_square import DEFAULT_SIGNIFICANCE
from repro.pipeline.params import ParamError, ParamSpec, resolve_params
from repro.pipeline.pipeline import PublishPipeline
from repro.pipeline.strategy import (
    PublishStrategy,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
)
from repro.service.parallel import run_chunked
from repro.service.registry import DatasetEntry, ServiceError


@dataclass(frozen=True)
class BackendResult:
    """What a backend produced for one publish job."""

    published: Table
    audit: PrivacyAudit | None
    metadata: dict[str, Any] = field(default_factory=dict)
    group_index_seconds: float = 0.0
    group_index_cached: bool = False


class AnonymizerBackend(ABC):
    """One publishing strategy, selectable by name.

    Subclasses declare their tunable parameters as typed
    :class:`~repro.pipeline.params.ParamSpec` objects in ``param_specs``.
    Legacy subclasses that only declare a ``defaults`` mapping keep working:
    each default is treated as an untyped float parameter.
    """

    name: ClassVar[str]
    param_specs: ClassVar[tuple[ParamSpec, ...]] = ()

    @property
    def defaults(self) -> dict[str, Any]:
        """Parameter name → default value (typed), derived from the specs."""
        return {spec.name: spec.default for spec in self._specs()}

    def _specs(self) -> tuple[ParamSpec, ...]:
        if self.param_specs:
            return tuple(self.param_specs)
        legacy = getattr(type(self), "defaults", None)
        if isinstance(legacy, Mapping):
            return tuple(ParamSpec.floating(name, float(value)) for name, value in legacy.items())
        return ()

    def resolve_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Merge ``params`` over the backend defaults, validating types and ranges."""
        try:
            return resolve_params(self._specs(), params, owner=f"backend {self.name!r}")
        except ParamError as exc:
            raise ServiceError(str(exc)) from None

    @abstractmethod
    def publish(
        self,
        entry: DatasetEntry,
        params: Mapping[str, Any],
        seed: int,
        chunk_size: int,
        max_workers: int,
    ) -> BackendResult:
        """Publish the dataset of ``entry`` and return the result bundle."""


class StrategyBackend(AnonymizerBackend):
    """Adapter exposing one core pipeline strategy through the service interface."""

    def __init__(self, strategy: PublishStrategy) -> None:
        self._strategy = strategy
        self.name = strategy.name
        self.param_specs = strategy.params

    @property
    def strategy(self) -> PublishStrategy:
        """The wrapped core strategy."""
        return self._strategy

    def publish(
        self,
        entry: DatasetEntry,
        params: Mapping[str, Any],
        seed: int,
        chunk_size: int,
        max_workers: int,
    ) -> BackendResult:
        resolved = self.resolve_params(params)
        strategy = self._strategy
        if strategy.generalizes:
            generalization, index, index_seconds, cached = entry.generalized(
                resolved.get("significance", DEFAULT_SIGNIFICANCE)
            )
        else:
            generalization = None
            index, index_seconds, cached = entry.groups()

        def runner(
            items: Sequence[Any],
            chunk_fn: Callable[[Sequence[Any], np.random.Generator], Any],
            chunk_seed: int,
            size: int,
        ) -> list[Any]:
            return run_chunked(items, chunk_fn, chunk_seed, size, max_workers)

        pipeline = (
            PublishPipeline(strategy, **resolved)
            .with_rng(seed)
            .with_chunk_size(chunk_size)
            .with_runner(runner)
            .with_groups(index)
        )
        if generalization is not None:
            pipeline.with_generalization(generalization)
        report = pipeline.run(entry.table)
        metadata = {"params": report.params, **report.metadata}
        if report.groups:
            metadata.update(
                n_groups=len(report.groups),
                n_sampled_groups=report.n_sampled_groups,
                sampled_fraction=report.sampled_fraction,
            )
        return BackendResult(
            published=report.published,
            audit=report.audit,
            metadata=metadata,
            group_index_seconds=index_seconds,
            group_index_cached=cached,
        )


# ---------------------------------------------------------------------- #
# Backend registry
# ---------------------------------------------------------------------- #

_BACKENDS: dict[str, AnonymizerBackend] = {}
# The HTTP front end is a ThreadingHTTPServer and adapters are created
# lazily, so every read or write of _BACKENDS goes through this lock
# (re-entrant: get_backend registers while holding it).
_REGISTRY_LOCK = threading.RLock()


def register_backend(backend: AnonymizerBackend, replace: bool = False) -> AnonymizerBackend:
    """Register a backend instance under its ``name``."""
    if not getattr(backend, "name", ""):
        raise ServiceError("backend must declare a non-empty name")
    with _REGISTRY_LOCK:
        if backend.name in _BACKENDS and not replace:
            raise ServiceError(f"backend {backend.name!r} is already registered")
        _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> AnonymizerBackend:
    """Look a backend up by name (raises :class:`ServiceError` if unknown).

    Adapters mirror the core strategy registry: names present there but not
    yet adapted (e.g. a strategy registered after import) are wrapped on
    first use, a cached adapter whose core strategy was replaced
    (``register_strategy(..., replace=True)``) is re-wrapped, and an adapter
    whose core strategy was unregistered is dropped — so the service never
    serves a stale strategy.  Re-wrapping uses ``replace=True`` so concurrent
    first requests for the same name cannot race into a
    duplicate-registration error.
    """
    with _REGISTRY_LOCK:
        backend = _BACKENDS.get(name)
        try:
            strategy = get_strategy(name)
        except UnknownStrategyError:
            strategy = None
        if backend is not None:
            if isinstance(backend, StrategyBackend):
                if strategy is None:
                    _BACKENDS.pop(name, None)
                    backend = None
                elif backend.strategy is not strategy:
                    return register_backend(StrategyBackend(strategy), replace=True)
                else:
                    return backend
            else:
                return backend
        if strategy is None:
            raise ServiceError(
                f"unknown backend {name!r}; available backends: {available_backends()}"
            )
        return register_backend(StrategyBackend(strategy), replace=True)


def available_backends() -> list[str]:
    """Sorted names of all selectable backends (registered + core strategies).

    Strategy adapters whose core strategy has been unregistered are excluded,
    mirroring :func:`get_backend`.
    """
    strategies = set(available_strategies())
    with _REGISTRY_LOCK:
        names = {
            name
            for name, backend in _BACKENDS.items()
            if name in strategies or not isinstance(backend, StrategyBackend)
        }
    return sorted(names | strategies)


def backend_descriptions() -> dict[str, dict[str, Any]]:
    """Map of backend name to its default parameters (for ``/stats`` and docs)."""
    return {name: dict(get_backend(name).defaults) for name in available_backends()}


for _name in available_strategies():
    register_backend(StrategyBackend(get_strategy(_name)))
