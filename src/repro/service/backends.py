"""Pluggable publisher backends.

Every publishing strategy in the tree is wrapped behind the same
:class:`AnonymizerBackend` interface so service callers pick a strategy by
name and new strategies are one :func:`register_backend` call away:

==================  =========================================================
``sps``             the paper's Sampling-Perturbing-Scaling algorithm
``uniform``         plain uniform perturbation (the paper's UP baseline)
``dp-laplace``      per-group Laplace-noisy SA histogram synthesis
``dp-gaussian``     per-group Gaussian-noisy SA histogram synthesis
``generalize+sps``  chi-square NA generalisation followed by SPS
==================  =========================================================

All group-wise backends run through :func:`repro.service.parallel.run_chunked`
with per-chunk seeded streams, so their output is deterministic for a fixed
``(seed, chunk_size)`` at any worker count.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.core.criterion import PrivacySpec
from repro.core.sps import GroupPublication, sps_publish_groups
from repro.core.testing import PrivacyAudit, audit_table
from repro.dataset.groups import GroupIndex, PersonalGroup
from repro.dataset.table import Table
from repro.dp.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.perturbation.uniform import UniformPerturbation
from repro.service.parallel import run_chunked
from repro.service.registry import DatasetEntry, ServiceError


@dataclass(frozen=True)
class BackendResult:
    """What a backend produced for one publish job."""

    published: Table
    audit: PrivacyAudit | None
    metadata: dict[str, Any] = field(default_factory=dict)
    group_index_seconds: float = 0.0
    group_index_cached: bool = False


class AnonymizerBackend(ABC):
    """One publishing strategy, selectable by name.

    Subclasses declare their tunable parameters (with defaults) in
    ``defaults``; :meth:`resolve_params` merges caller-supplied values over
    them and rejects unknown keys so typos fail loudly instead of silently
    publishing with defaults.
    """

    name: ClassVar[str]
    defaults: ClassVar[dict[str, float]]

    def resolve_params(self, params: Mapping[str, Any]) -> dict[str, float]:
        """Merge ``params`` over the backend defaults, rejecting unknown keys."""
        unknown = set(params) - set(self.defaults)
        if unknown:
            raise ServiceError(
                f"backend {self.name!r} does not accept parameters {sorted(unknown)}; "
                f"known parameters: {sorted(self.defaults)}"
            )
        resolved = dict(self.defaults)
        for key, value in params.items():
            try:
                resolved[key] = float(value)
            except (TypeError, ValueError):
                raise ServiceError(
                    f"backend {self.name!r} parameter {key!r} must be a number, "
                    f"got {value!r}"
                ) from None
        return resolved

    @abstractmethod
    def publish(
        self,
        entry: DatasetEntry,
        params: Mapping[str, Any],
        seed: int,
        chunk_size: int,
        max_workers: int,
    ) -> BackendResult:
        """Publish the dataset of ``entry`` and return the result bundle."""


# ---------------------------------------------------------------------- #
# Backend registry
# ---------------------------------------------------------------------- #

_BACKENDS: dict[str, AnonymizerBackend] = {}


def register_backend(backend: AnonymizerBackend, replace: bool = False) -> AnonymizerBackend:
    """Register a backend instance under its ``name``."""
    if not getattr(backend, "name", ""):
        raise ServiceError("backend must declare a non-empty name")
    if backend.name in _BACKENDS and not replace:
        raise ServiceError(f"backend {backend.name!r} is already registered")
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> AnonymizerBackend:
    """Look a backend up by name (raises :class:`ServiceError` if unknown)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ServiceError(
            f"unknown backend {name!r}; available backends: {available_backends()}"
        ) from None


def available_backends() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_BACKENDS)


def backend_descriptions() -> dict[str, dict[str, float]]:
    """Map of backend name to its default parameters (for ``/stats`` and docs)."""
    return {name: dict(backend.defaults) for name, backend in sorted(_BACKENDS.items())}


# ---------------------------------------------------------------------- #
# Shared chunked executors
# ---------------------------------------------------------------------- #


def _chunked_sps(
    index: GroupIndex,
    table: Table,
    spec: PrivacySpec,
    seed: int,
    chunk_size: int,
    max_workers: int,
) -> tuple[Table, list[GroupPublication]]:
    """Run SPS over ``index`` in deterministic seeded chunks."""
    perturbation = UniformPerturbation(spec.retention_probability, spec.domain_size)
    n_public = len(table.schema.public)

    def chunk_fn(
        chunk: Sequence[PersonalGroup], rng: np.random.Generator
    ) -> tuple[np.ndarray, list[GroupPublication]]:
        return sps_publish_groups(chunk, spec, rng, n_public, perturbation)

    results = run_chunked(list(index), chunk_fn, seed, chunk_size, max_workers)
    blocks = [codes for codes, _ in results if codes.size]
    records = [record for _, chunk_records in results for record in chunk_records]
    if blocks:
        codes = np.vstack(blocks)
    else:
        codes = np.empty((0, n_public + 1), dtype=np.int64)
    return Table(table.schema, codes), records


def _sampled_stats(records: list[GroupPublication]) -> dict[str, Any]:
    sampled = sum(1 for r in records if r.sampled)
    return {
        "n_groups": len(records),
        "n_sampled_groups": sampled,
        "sampled_fraction": sampled / len(records) if records else 0.0,
    }


# ---------------------------------------------------------------------- #
# Concrete backends
# ---------------------------------------------------------------------- #


class SPSBackend(AnonymizerBackend):
    """The paper's SPS enforcement algorithm over the cached group index."""

    name = "sps"
    defaults = {"lam": 0.3, "delta": 0.3, "retention_probability": 0.5}

    def publish(self, entry, params, seed, chunk_size, max_workers):
        resolved = self.resolve_params(params)
        table = entry.table
        spec = PrivacySpec(
            lam=resolved["lam"],
            delta=resolved["delta"],
            retention_probability=resolved["retention_probability"],
            domain_size=table.schema.sensitive_domain_size,
        )
        index, index_seconds, cached = entry.groups()
        published, records = _chunked_sps(index, table, spec, seed, chunk_size, max_workers)
        audit = audit_table(table, spec, groups=index)
        return BackendResult(
            published=published,
            audit=audit,
            metadata={"params": resolved, **_sampled_stats(records)},
            group_index_seconds=index_seconds,
            group_index_cached=cached,
        )


class UniformBackend(AnonymizerBackend):
    """Plain uniform perturbation (the UP baseline), audited but never sampled."""

    name = "uniform"
    defaults = {"lam": 0.3, "delta": 0.3, "retention_probability": 0.5}

    def publish(self, entry, params, seed, chunk_size, max_workers):
        resolved = self.resolve_params(params)
        table = entry.table
        spec = PrivacySpec(
            lam=resolved["lam"],
            delta=resolved["delta"],
            retention_probability=resolved["retention_probability"],
            domain_size=table.schema.sensitive_domain_size,
        )
        operator = UniformPerturbation(spec.retention_probability, spec.domain_size)
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        published = operator.perturb_table(table, rng)
        index, index_seconds, cached = entry.groups()
        audit = audit_table(table, spec, groups=index)
        return BackendResult(
            published=published,
            audit=audit,
            metadata={"params": resolved},
            group_index_seconds=index_seconds,
            group_index_cached=cached,
        )


class _DPHistogramBackend(AnonymizerBackend):
    """Shared machinery of the DP backends: noisy per-group SA histograms.

    For each personal group, add independent noise to its SA count vector,
    clamp to non-negative integers and emit that many records per value.  The
    NA key structure is preserved exactly (as the paper's model requires);
    only the per-group SA histograms are privatised.
    """

    def _mechanism(self, resolved: Mapping[str, float]):
        raise NotImplementedError

    def _mechanism_metadata(self, mechanism) -> dict[str, Any]:
        raise NotImplementedError

    def publish(self, entry, params, seed, chunk_size, max_workers):
        resolved = self.resolve_params(params)
        mechanism = self._mechanism(resolved)
        table = entry.table
        m = table.schema.sensitive_domain_size
        n_public = len(table.schema.public)
        index, index_seconds, cached = entry.groups()

        def chunk_fn(chunk: Sequence[PersonalGroup], rng: np.random.Generator) -> np.ndarray:
            blocks: list[np.ndarray] = []
            for group in chunk:
                noisy = np.asarray(
                    mechanism.add_noise(group.sensitive_counts.astype(float), rng)
                )
                counts = np.maximum(0, np.rint(noisy)).astype(np.int64)
                codes = np.repeat(np.arange(m, dtype=np.int64), counts)
                if codes.size == 0:
                    continue
                block = np.empty((codes.size, n_public + 1), dtype=np.int64)
                block[:, :n_public] = np.asarray(group.key, dtype=np.int64)
                block[:, n_public] = codes
                blocks.append(block)
            if blocks:
                return np.vstack(blocks)
            return np.empty((0, n_public + 1), dtype=np.int64)

        results = run_chunked(list(index), chunk_fn, seed, chunk_size, max_workers)
        nonempty = [block for block in results if block.size]
        if nonempty:
            codes = np.vstack(nonempty)
        else:
            codes = np.empty((0, n_public + 1), dtype=np.int64)
        return BackendResult(
            published=Table(table.schema, codes),
            audit=None,
            metadata={"params": resolved, **self._mechanism_metadata(mechanism)},
            group_index_seconds=index_seconds,
            group_index_cached=cached,
        )


class DPLaplaceBackend(_DPHistogramBackend):
    """Laplace-mechanism histogram publication (epsilon-DP per count)."""

    name = "dp-laplace"
    defaults = {"epsilon": 1.0, "sensitivity": 1.0}

    def _mechanism(self, resolved):
        return LaplaceMechanism(resolved["epsilon"], sensitivity=resolved["sensitivity"])

    def _mechanism_metadata(self, mechanism):
        return {"scale": mechanism.scale, "noise_variance": mechanism.variance}


class DPGaussianBackend(_DPHistogramBackend):
    """Gaussian-mechanism histogram publication ((epsilon, delta)-DP per count)."""

    name = "dp-gaussian"
    defaults = {"epsilon": 1.0, "dp_delta": 1e-5, "sensitivity": 1.0}

    def _mechanism(self, resolved):
        return GaussianMechanism(
            resolved["epsilon"], resolved["dp_delta"], sensitivity=resolved["sensitivity"]
        )

    def _mechanism_metadata(self, mechanism):
        return {"sigma": mechanism.sigma, "noise_variance": mechanism.variance}


class GeneralizeSPSBackend(AnonymizerBackend):
    """Chi-square generalisation of the public attributes followed by SPS.

    This is the paper's full publishing pipeline (Sections 3.4 + 5): merge
    NA values with the same SA impact first, then enforce the criterion on
    the generalised personal groups.  The generalised table and its group
    index are cached on the dataset entry per significance level.
    """

    name = "generalize+sps"
    defaults = {
        "lam": 0.3,
        "delta": 0.3,
        "retention_probability": 0.5,
        "significance": 0.05,
    }

    def publish(self, entry, params, seed, chunk_size, max_workers):
        resolved = self.resolve_params(params)
        generalization, index, index_seconds, cached = entry.generalized(
            resolved["significance"]
        )
        table = generalization.table
        spec = PrivacySpec(
            lam=resolved["lam"],
            delta=resolved["delta"],
            retention_probability=resolved["retention_probability"],
            domain_size=table.schema.sensitive_domain_size,
        )
        published, records = _chunked_sps(index, table, spec, seed, chunk_size, max_workers)
        audit = audit_table(table, spec, groups=index)
        domains = {
            merge.original.name: {
                "before": merge.original_domain_size,
                "after": merge.generalized_domain_size,
            }
            for merge in generalization.merges
        }
        return BackendResult(
            published=published,
            audit=audit,
            metadata={"params": resolved, "generalized_domains": domains, **_sampled_stats(records)},
            group_index_seconds=index_seconds,
            group_index_cached=cached,
        )


for _backend in (
    SPSBackend(),
    UniformBackend(),
    DPLaplaceBackend(),
    DPGaussianBackend(),
    GeneralizeSPSBackend(),
):
    register_backend(_backend)
