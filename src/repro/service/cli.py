"""Command-line front end: the same verbs as the HTTP API.

State persists between invocations through ``--store PATH`` — a durable
SQLite store by default, or the legacy JSON snapshot for ``*.json`` paths
(see ``docs/storage.md``) — so a shell session can register once and publish
many times, mirroring the service's register-once/publish-many lifecycle
without a running server::

    repro-service register demo --synthetic adult --rows 100000 --store state.db
    repro-service publish --dataset demo --backend sps --seed 7 --store state.db
    repro-service publish --dataset demo --backend sps --trace job-trace.jsonl
    repro-service audit --dataset demo --store state.db
    repro-service serve --store state.db --port 8080

Human-facing output (errors, the serve banner) goes to stderr through stdlib
logging — ``--verbose``/``--quiet`` set the level — while command results
stay JSON-on-stdout.  ``publish --trace PATH`` records the job's span tree
as a JSONL trace.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import sys
from collections.abc import Sequence
from typing import Any

from repro import __version__
from repro.dataset.loaders import write_csv
from repro.obs import Tracer, configure_cli_logging, export
from repro.service.backends import backend_descriptions
from repro.service.engine import AnonymizationService
from repro.service.http_api import serve
from repro.service.parallel import DEFAULT_CHUNK_SIZE
from repro.service.registry import ServiceError

_log = logging.getLogger("repro.service")

#: CLI flag -> backend parameter name (only flags the user passed are sent,
#: so each backend's own defaults fill the rest).
_PARAM_FLAGS = {
    "lam": "lam",
    "delta": "delta",
    "retention": "retention_probability",
    "epsilon": "epsilon",
    "dp_delta": "dp_delta",
    "sensitivity": "sensitivity",
    "significance": "significance",
}


def _emit(payload: Any) -> None:
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "state file: SQLite store (durable default) or legacy *.json "
            "snapshot; every mutation persists write-through"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Anonymization-as-a-service front end for the repro library.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    volume = parser.add_mutually_exclusive_group()
    volume.add_argument(
        "--verbose", action="store_true", help="debug-level logging on stderr"
    )
    volume.add_argument(
        "--quiet", action="store_true", help="errors only on stderr"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the HTTP JSON API")
    _add_store(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--quiet", action="store_true", help="suppress request logging")

    p_register = sub.add_parser("register", help="register a dataset")
    _add_store(p_register)
    p_register.add_argument("name", help="dataset name")
    source = p_register.add_mutually_exclusive_group(required=True)
    source.add_argument("--csv", metavar="PATH", help="CSV file to load")
    source.add_argument(
        "--synthetic",
        choices=("adult", "census"),
        help="generate a synthetic table instead of loading a file",
    )
    p_register.add_argument("--sensitive", help="sensitive column name (CSV sources)")
    p_register.add_argument("--rows", type=int, default=10_000, help="synthetic row count")
    p_register.add_argument("--seed", type=int, default=0, help="synthetic generator seed")
    p_register.add_argument("--replace", action="store_true", help="overwrite an existing name")

    p_publish = sub.add_parser("publish", help="run a publish job")
    _add_store(p_publish)
    p_publish.add_argument("--dataset", required=True)
    p_publish.add_argument("--backend", required=True)
    p_publish.add_argument("--seed", type=int, default=0)
    p_publish.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE)
    p_publish.add_argument("--workers", type=int, default=1)
    p_publish.add_argument(
        "--output", metavar="PATH", help="also write the published table as CSV"
    )
    p_publish.add_argument(
        "--trace", metavar="PATH",
        help="record the job's spans and write them as a JSONL trace",
    )
    p_publish.add_argument("--lam", type=float)
    p_publish.add_argument("--delta", type=float)
    p_publish.add_argument("--retention", type=float, help="retention probability p")
    p_publish.add_argument("--epsilon", type=float)
    p_publish.add_argument("--dp-delta", type=float, dest="dp_delta")
    p_publish.add_argument("--sensitivity", type=float)
    p_publish.add_argument("--significance", type=float)

    p_audit = sub.add_parser("audit", help="audit a dataset against (lambda, delta, p)")
    _add_store(p_audit)
    p_audit.add_argument("--dataset", required=True)
    p_audit.add_argument("--lam", type=float, default=0.3)
    p_audit.add_argument("--delta", type=float, default=0.3)
    p_audit.add_argument("--retention", type=float, default=0.5)

    p_datasets = sub.add_parser("datasets", help="list registered datasets")
    _add_store(p_datasets)

    p_jobs = sub.add_parser("jobs", help="list job records (or show one)")
    _add_store(p_jobs)
    p_jobs.add_argument("job_id", nargs="?", help="show a single job")

    p_stats = sub.add_parser("stats", help="service counters")
    _add_store(p_stats)

    sub.add_parser("backends", help="list available backends and their parameters")
    return parser


def _collect_params(args: argparse.Namespace) -> dict[str, float]:
    params: dict[str, float] = {}
    for flag, name in _PARAM_FLAGS.items():
        value = getattr(args, flag, None)
        if value is not None:
            params[name] = value
    return params


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_cli_logging(
        verbose=getattr(args, "verbose", False), quiet=getattr(args, "quiet", False)
    )
    try:
        return _run(args)
    except ServiceError as exc:
        _log.error("error: %s", exc)
        return 2


def _run(args: argparse.Namespace) -> int:
    if args.command == "backends":
        _emit(backend_descriptions())
        return 0

    service = AnonymizationService(snapshot_path=args.store)

    if args.command == "serve":
        serve(service, host=args.host, port=args.port, verbose=not args.quiet)
        return 0

    try:
        return _run_command(service, args)
    finally:
        service.close()


def _run_command(service: AnonymizationService, args: argparse.Namespace) -> int:
    if args.command == "register":
        if args.csv:
            if not args.sensitive:
                raise ServiceError("--csv requires --sensitive COLUMN")
            entry = service.register_csv(
                args.name, args.csv, args.sensitive, replace=args.replace
            )
        else:
            entry = service.register_synthetic(
                args.name,
                generator=args.synthetic,
                n_records=args.rows,
                seed=args.seed,
                replace=args.replace,
            )
        if args.store:
            service.save()
        _emit(entry.to_json())
        return 0

    if args.command == "publish":
        tracer = Tracer() if args.trace else None
        try:
            with tracer if tracer is not None else contextlib.nullcontext():
                record = service.publish(
                    dataset=args.dataset,
                    backend=args.backend,
                    params=_collect_params(args),
                    seed=args.seed,
                    chunk_size=args.chunk_size,
                    max_workers=args.workers,
                )
        except ServiceError:
            # Persist the failed job record too, so `jobs --store` shows it.
            if args.store:
                service.save()
            raise
        if tracer is not None:
            export.write_trace(tracer, args.trace)
            _log.info(
                "trace written to %s (%d spans)", args.trace, len(tracer.spans)
            )
        if args.output:
            write_csv(record.published, args.output)
        if args.store:
            service.save()
        _emit(record.to_json())
        return 0

    if args.command == "audit":
        _emit(
            service.audit(
                dataset=args.dataset,
                lam=args.lam,
                delta=args.delta,
                retention_probability=args.retention,
            )
        )
        return 0

    if args.command == "datasets":
        _emit([entry.to_json() for entry in service.datasets.entries()])
        return 0

    if args.command == "jobs":
        if args.job_id:
            _emit(service.job(args.job_id).to_json())
        else:
            _emit([record.to_json() for record in service.jobs.records()])
        return 0

    if args.command == "stats":
        _emit(service.stats())
        return 0

    raise ServiceError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
