"""The anonymization service engine.

:class:`AnonymizationService` is the facade shared by the HTTP front end and
the CLI: it owns the dataset registry, job store and delta registry, executes
publish jobs through the named backend (fanning group work out over the
shared process-pool scheduler of :mod:`repro.parallel` with per-chunk seeded
streams), and runs audits against the cached group indexes.

All state persists write-through over one
:class:`~repro.store.base.StorageConnector` (:mod:`repro.store`): dataset
tables, built group-index caches, job records with live progress, the job-id
counter and every :class:`~repro.delta.state.DeltaState`.  Restarting on the
same store path resumes with everything intact — including delta datasets,
which stay appendable across a crash.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from pathlib import Path
from collections.abc import Mapping
from typing import IO, TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.cache import ResponseCache

from repro import __version__
from repro.core.criterion import PrivacySpec
from repro.core.testing import audit_table
from repro.delta.state import DeltaState, DeltaStateStore
from repro.dataset.adult import generate_adult
from repro.dataset.census import generate_census
from repro.dataset.loaders import read_csv
from repro.dataset.table import Table
from repro.pipeline import strategy_descriptions
from repro.service.backends import available_backends, backend_descriptions, get_backend
from repro.service.models import AuditSummary, JobRecord, JobSpec, JobTimings
from repro.service.parallel import DEFAULT_CHUNK_SIZE
from repro.service.registry import (
    DatasetEntry,
    DatasetRegistry,
    JobStore,
    NotFoundError,
    ServiceError,
)
from repro.store import (
    JsonSnapshotConnector,
    StorageConnector,
    VersionConflictError,
    copy_store,
    open_store,
)

_SYNTHETIC_GENERATORS = {
    "adult": generate_adult,
    "census": generate_census,
}


def _mark_event(
    events: list[dict[str, Any]], name: str, started: float, **fields: Any
) -> None:
    """Append one timeline event; consecutive updates of a phase coalesce.

    A stream job's ``read``/``enforce`` phases fire once per chunk; keeping
    only the latest update per consecutive phase makes the persisted timeline
    deterministic for a given job shape (``started → read → group_index →
    enforce → done → completed``) while still carrying the final counters of
    each phase.
    """
    event = {"event": name, "elapsed": time.perf_counter() - started, **fields}
    if events and events[-1]["event"] == name:
        events[-1] = event
    else:
        events.append(event)


class AnonymizationService:
    """Registry + engine + job history behind one object.

    Parameters
    ----------
    snapshot_path:
        Optional store path.  ``*.json`` paths use the legacy JSON-snapshot
        backend (loaded at start, rewritten on every commit); any other path
        gets the durable SQLite backend; a legacy JSON file handed to a
        non-JSON path migrates in place on first open.  ``None`` keeps all
        state in memory.
    store:
        An already-constructed connector; overrides ``snapshot_path``-based
        backend resolution (used by tests and embedders).
    """

    def __init__(
        self,
        snapshot_path: str | Path | None = None,
        store: StorageConnector | None = None,
    ) -> None:
        self._snapshot_path = Path(snapshot_path) if snapshot_path else None
        if store is not None:
            self._store = store.open()
        else:
            self._store = open_store(self._snapshot_path)
        self.datasets = DatasetRegistry(store=self._store)
        self.jobs = JobStore(store=self._store)
        #: Delta-publishable datasets, persisted through the store so a
        #: restarted service resumes appending where it left off.
        self.deltas = DeltaStateStore(self._store)
        self._delta_locks: dict[str, threading.Lock] = {}
        self._delta_locks_guard = threading.Lock()
        self._response_cache: "ResponseCache | None" = None
        self._started = time.perf_counter()

    @property
    def snapshot_path(self) -> Path | None:
        """The configured store path, or ``None`` when persistence is off."""
        return self._snapshot_path

    @property
    def store(self) -> StorageConnector:
        """The storage connector all service state persists through."""
        return self._store

    def close(self) -> None:
        """Release the underlying store (idempotent)."""
        self._store.close()

    def _delta_lock(self, name: str) -> threading.Lock:
        """The per-dataset lock serialising in-process delta mutations."""
        with self._delta_locks_guard:
            return self._delta_locks.setdefault(name, threading.Lock())

    # ------------------------------------------------------------------ #
    # Response cache (serving layer)
    # ------------------------------------------------------------------ #
    @property
    def response_cache(self) -> "ResponseCache | None":
        """The attached serving-layer response cache, if any."""
        return self._response_cache

    def attach_response_cache(self, cache: "ResponseCache") -> None:
        """Bind a :class:`repro.serve.cache.ResponseCache` to this service.

        Once attached, every dataset mutation — re-register, delta base
        publish, delta append — invalidates that dataset's cached responses,
        and :meth:`stats` reports the cache's counters.
        """
        self._response_cache = cache

    def _notify_dataset_changed(self, name: str) -> None:
        """Invalidate cached responses after a dataset-mutating operation."""
        if self._response_cache is not None:
            self._response_cache.invalidate(name)

    # ------------------------------------------------------------------ #
    # Dataset registration
    # ------------------------------------------------------------------ #
    def register_table(self, name: str, table: Table, replace: bool = False) -> DatasetEntry:
        """Register an in-memory :class:`Table` under ``name``."""
        entry = self.datasets.register(name, table, replace=replace)
        self._notify_dataset_changed(name)
        return entry

    def register_csv(
        self,
        name: str,
        source: str | Path | IO[str],
        sensitive: str,
        replace: bool = False,
    ) -> DatasetEntry:
        """Register a CSV file or stream (the upload endpoint's entry point)."""
        table = read_csv(source, sensitive=sensitive)
        return self.register_table(name, table, replace=replace)

    def register_synthetic(
        self,
        name: str,
        generator: str = "adult",
        n_records: int = 10_000,
        seed: int = 0,
        replace: bool = False,
    ) -> DatasetEntry:
        """Register a synthetic ADULT or CENSUS table of ``n_records`` rows."""
        try:
            factory = _SYNTHETIC_GENERATORS[generator]
        except KeyError:
            raise ServiceError(
                f"unknown synthetic generator {generator!r}; "
                f"choose from {sorted(_SYNTHETIC_GENERATORS)}"
            ) from None
        if n_records <= 0:
            raise ServiceError("n_records must be positive")
        table = factory(n_records, seed=seed)
        return self.register_table(name, table, replace=replace)

    # ------------------------------------------------------------------ #
    # Jobs
    # ------------------------------------------------------------------ #
    def publish(
        self,
        dataset: str,
        backend: str,
        params: Mapping[str, Any] | None = None,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_workers: int = 1,
    ) -> JobRecord:
        """Execute one publish job and record it in the job store.

        The job is synchronous: the record returned is already completed (or
        failed, with ``status == "failed"`` and the error message recorded).
        """
        spec = JobSpec(
            dataset=dataset,
            backend=backend,
            params=dict(params or {}),
            seed=int(seed),
            chunk_size=int(chunk_size),
            max_workers=int(max_workers),
        )
        if spec.chunk_size <= 0:
            raise ServiceError("chunk_size must be positive")
        if spec.max_workers <= 0:
            raise ServiceError("max_workers must be positive")
        entry = self.datasets.get(dataset)
        backend_impl = get_backend(backend)
        record = JobRecord(job_id=self.jobs.new_job_id(), spec=spec, status="running")
        start = time.perf_counter()
        _mark_event(record.events, "started", start, backend=spec.backend)
        try:
            result = backend_impl.publish(
                entry, spec.params, spec.seed, spec.chunk_size, spec.max_workers
            )
        except ValueError as exc:
            total = time.perf_counter() - start
            record.status = "failed"
            record.error = str(exc)
            _mark_event(record.events, "failed", start, error=str(exc))
            record.timings = JobTimings(
                group_index_seconds=0.0,
                publish_seconds=total,
                total_seconds=total,
                group_index_cached=False,
            )
            self.jobs.add(record)
            raise ServiceError(f"job {record.job_id} failed: {exc}") from exc
        total = time.perf_counter() - start
        _mark_event(
            record.events, "completed", start, published_records=len(result.published)
        )
        record.status = "completed"
        record.published = result.published
        record.published_records = len(result.published)
        record.metadata = dict(result.metadata)
        record.audit = AuditSummary.from_audit(result.audit) if result.audit else None
        record.timings = JobTimings(
            group_index_seconds=result.group_index_seconds,
            publish_seconds=total - result.group_index_seconds,
            total_seconds=total,
            group_index_cached=result.group_index_cached,
        )
        self.jobs.add(record)
        return record

    def publish_stream(
        self,
        source: str | Path,
        sensitive: str,
        backend: str,
        params: Mapping[str, Any] | None = None,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        chunk_rows: int | None = None,
        workers: int = 1,
        output: str | Path | None = None,
    ) -> JobRecord:
        """Publish a CSV source out-of-core as a ``stream=true`` job.

        Unlike :meth:`publish`, the source is never registered as a dataset
        and never fully loaded: the job streams it through
        :func:`repro.stream.stream_publish` in bounded-memory chunks of
        ``chunk_rows`` records.  The job record is added to the store *before*
        execution with ``status == "running"`` and its ``progress`` field is
        updated as chunks flow, so concurrent ``GET /jobs/<id>`` requests (and
        snapshots) see rows-read / records-published counters mid-flight.

        When ``output`` is given the published rows stream to that CSV and
        the record holds no table; without it the published table stays in
        memory like a regular job's.  For a fixed ``(seed, chunk_size)`` the
        published bytes equal the in-memory backend's — at any ``workers``
        count (the enforce stage fans out over the shared process-pool
        scheduler; the spec records it as ``max_workers``).
        """
        from repro.pipeline.params import ParamError
        from repro.pipeline.strategy import UnknownStrategyError, get_strategy
        from repro.stream.engine import stream_publish

        spec = JobSpec(
            dataset=str(source),
            backend=backend,
            params=dict(params or {}),
            seed=int(seed),
            chunk_size=int(chunk_size),
            max_workers=int(workers),
            stream=True,
            source=str(source),
            sensitive=str(sensitive),
            chunk_rows=int(chunk_rows) if chunk_rows is not None else None,
            output=str(output) if output is not None else None,
        )
        if spec.chunk_size <= 0:
            raise ServiceError("chunk_size must be positive")
        if spec.chunk_rows is not None and spec.chunk_rows <= 0:
            raise ServiceError("chunk_rows must be positive")
        if spec.max_workers <= 0:
            raise ServiceError("workers must be positive")
        # Engine/job options are top-level fields; a params key with one of
        # their names would silently bind (or collide with) a stream_publish
        # keyword instead of reaching the strategy's typed validation.
        reserved = {
            "source", "sensitive", "strategy", "rng", "chunk_size", "chunk_rows",
            "workers", "parallel_backend", "audit", "output", "materialize",
            "overwrite", "delimiter", "progress", "track_memory",
        }
        collisions = sorted(reserved & spec.params.keys())
        if collisions:
            raise ServiceError(
                f"{collisions} are stream-job options, not strategy parameters; "
                "pass them as top-level request fields"
            )
        try:
            strategy = get_strategy(backend)
        except UnknownStrategyError as exc:
            raise ServiceError(str(exc)) from None
        record = JobRecord(job_id=self.jobs.new_job_id(), spec=spec, status="running")
        self.jobs.add(record)
        start = time.perf_counter()
        _mark_event(record.events, "started", start, backend=spec.backend)

        def on_progress(event: Mapping[str, Any]) -> None:
            record.progress = dict(event)
            data = dict(event)
            phase = str(data.pop("phase", "progress"))
            _mark_event(record.events, phase, start, **data)
            # Write-through: a concurrent GET /jobs/<id> served by another
            # process sharing the store sees live progress, and a crash
            # leaves the record honest up to the last chunk boundary.
            self.jobs.update(record)

        extra: dict[str, Any] = {}
        if spec.chunk_rows is not None:
            extra["chunk_rows"] = spec.chunk_rows
        try:
            report = stream_publish(
                source,
                sensitive=sensitive,
                strategy=strategy,
                rng=spec.seed,
                chunk_size=spec.chunk_size,
                workers=spec.max_workers,
                output=output,
                # mode "x": never clobber an existing server-side file, even
                # when two concurrent jobs race to the same output path.
                overwrite=False,
                progress=on_progress,
                **extra,
                **spec.params,
            )
        except BaseException as exc:
            # The record was added as "running" before execution; whatever
            # went wrong (client error, MemoryError, interrupt), never leave
            # it in that state — the store and its snapshots must stay
            # truthful.
            total = time.perf_counter() - start
            record.status = "failed"
            record.error = str(exc) or type(exc).__name__
            _mark_event(record.events, "failed", start, error=record.error)
            record.timings = JobTimings(
                group_index_seconds=0.0,
                publish_seconds=total,
                total_seconds=total,
                group_index_cached=False,
            )
            if isinstance(exc, (ValueError, ParamError, OSError)):
                raise ServiceError(f"job {record.job_id} failed: {exc}") from exc
            raise
        total = time.perf_counter() - start
        _mark_event(
            record.events, "completed", start,
            published_records=report.published_records,
        )
        record.status = "completed"
        record.published = report.published
        record.published_records = report.published_records
        record.metadata = {
            "params": dict(report.params),
            "rows_read": report.n_rows,
            "chunks_read": report.n_chunks,
            "chunk_rows": report.chunk_rows,
            "output": report.output,
            **report.metadata,
        }
        if report.groups:
            record.metadata.update(
                n_groups=len(report.groups),
                n_sampled_groups=report.n_sampled_groups,
                sampled_fraction=report.sampled_fraction,
            )
        record.audit = AuditSummary.from_audit(report.audit) if report.audit else None
        index_seconds = report.timings.get("group_index", 0.0)
        record.timings = JobTimings(
            group_index_seconds=index_seconds,
            publish_seconds=total - index_seconds,
            total_seconds=total,
            group_index_cached=False,
        )
        # Re-add so the store tracks (and caps) the resident published table.
        self.jobs.add(record)
        return record

    def publish_delta_base(
        self,
        name: str,
        source: str | Path,
        sensitive: str,
        backend: str,
        output: str | Path,
        params: Mapping[str, Any] | None = None,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        chunk_rows: int | None = None,
        workers: int = 1,
        replace: bool = False,
    ) -> JobRecord:
        """Publish a CSV source as a delta-re-publishable dataset named ``name``.

        Runs :func:`repro.delta.publish_base` as a ``delta=true`` job and
        persists the resulting :class:`~repro.delta.state.DeltaState` in the
        service's delta registry, so later :meth:`append_rows` calls — in
        this process or after a restart on the same store — can splice
        appended rows into the published CSV incrementally.  Raises
        :class:`~repro.service.registry.ServiceError` for strategies that
        declare no delta support (``delta_capable = False``).
        """
        with self._delta_lock(name):
            return self._publish_delta_base(
                name,
                source,
                sensitive,
                backend,
                output,
                params=params,
                seed=seed,
                chunk_size=chunk_size,
                chunk_rows=chunk_rows,
                workers=workers,
                replace=replace,
            )

    def _publish_delta_base(
        self,
        name: str,
        source: str | Path,
        sensitive: str,
        backend: str,
        output: str | Path,
        params: Mapping[str, Any] | None,
        seed: int,
        chunk_size: int,
        chunk_rows: int | None,
        workers: int,
        replace: bool,
    ) -> JobRecord:
        from repro.delta.engine import publish_base

        state_version = self.deltas.version(name)
        if not replace and state_version:
            raise ServiceError(
                f"delta dataset {name!r} already exists; pass replace=true to overwrite"
            )
        spec = JobSpec(
            dataset=name,
            backend=backend,
            params=dict(params or {}),
            seed=int(seed),
            chunk_size=int(chunk_size),
            max_workers=int(workers),
            delta=True,
            source=str(source),
            sensitive=str(sensitive),
            chunk_rows=int(chunk_rows) if chunk_rows is not None else None,
            output=str(output),
            rows_appended=0,
        )
        if spec.chunk_size <= 0:
            raise ServiceError("chunk_size must be positive")
        if spec.chunk_rows is not None and spec.chunk_rows <= 0:
            raise ServiceError("chunk_rows must be positive")
        if spec.max_workers <= 0:
            raise ServiceError("workers must be positive")
        record = JobRecord(job_id=self.jobs.new_job_id(), spec=spec, status="running")
        self.jobs.add(record)
        start = time.perf_counter()
        _mark_event(record.events, "started", start, backend=spec.backend)

        def on_progress(event: Mapping[str, Any]) -> None:
            record.progress = dict(event)
            data = dict(event)
            phase = str(data.pop("phase", "progress"))
            _mark_event(record.events, phase, start, **data)
            # Write-through: a concurrent GET /jobs/<id> served by another
            # process sharing the store sees live progress, and a crash
            # leaves the record honest up to the last chunk boundary.
            self.jobs.update(record)

        extra: dict[str, Any] = {}
        if spec.chunk_rows is not None:
            extra["chunk_rows"] = spec.chunk_rows
        try:
            report = publish_base(
                source,
                sensitive=str(sensitive),
                output=output,
                strategy=backend,
                rng=spec.seed,
                chunk_size=spec.chunk_size,
                workers=spec.max_workers,
                # Never clobber an existing server-side file: the splice path
                # later rewrites `output` in place, but the *base* publish
                # must not truncate an arbitrary path a client named.
                overwrite=False,
                progress=on_progress,
                **extra,
                **spec.params,
            )
        except BaseException as exc:
            total = time.perf_counter() - start
            record.status = "failed"
            record.error = str(exc) or type(exc).__name__
            _mark_event(record.events, "failed", start, error=record.error)
            record.timings = JobTimings(
                group_index_seconds=0.0,
                publish_seconds=total,
                total_seconds=total,
                group_index_cached=False,
            )
            if isinstance(exc, (ValueError, OSError)):
                raise ServiceError(f"job {record.job_id} failed: {exc}") from exc
            raise
        assert report.state is not None
        # Persist the state *before* the record claims completion: a crash
        # between the two leaves an appendable dataset and an honest
        # "running"→"interrupted" record, never the reverse.
        self._advance_delta_state(name, report.state, state_version, record, start)
        self._finish_delta_job(record, report, start)
        self._notify_dataset_changed(name)
        return record

    def _advance_delta_state(
        self,
        name: str,
        state: DeltaState,
        expected_version: int,
        record: JobRecord,
        start: float,
    ) -> None:
        """Persist a delta state at the version the job read, or fail the job.

        A conflict means another writer (through a shared store) advanced the
        dataset while this job ran; applying our state would silently drop
        their group counts, so the job fails with a typed error instead.
        """
        try:
            self.deltas.put(name, state, expected_version=expected_version)
        except VersionConflictError as exc:
            total = time.perf_counter() - start
            record.status = "failed"
            record.error = str(exc)
            _mark_event(record.events, "failed", start, error=record.error)
            record.timings = JobTimings(
                group_index_seconds=0.0,
                publish_seconds=total,
                total_seconds=total,
                group_index_cached=False,
            )
            self.jobs.add(record)
            raise ServiceError(
                f"job {record.job_id} failed: delta dataset {name!r} was modified "
                f"concurrently ({exc}); re-read and retry the operation"
            ) from exc

    def append_rows(
        self,
        name: str,
        rows: list[list[str]] | None = None,
        source: str | Path | None = None,
        workers: int = 1,
    ) -> JobRecord:
        """Fold appended rows into delta dataset ``name`` as a publish job.

        ``rows`` is an inline batch in the base header's column order (what
        ``POST /datasets/<name>/rows`` sends); ``source`` is a server-side
        CSV path with the same header — exactly one must be given.  The job
        re-runs only the kernel chunks whose personal groups changed and
        splices them into the published CSV atomically; its record carries
        live ``progress`` and the phase timeline (``append_read → diff →
        splice → done``), and the delta registry advances to the successor
        state — at the store version this job read, so a concurrent append
        through a shared store fails typed instead of losing updates — only
        when the job completes.
        """
        with self._delta_lock(name):
            return self._append_rows(name, rows=rows, source=source, workers=workers)

    def _append_rows(
        self,
        name: str,
        rows: list[list[str]] | None,
        source: str | Path | None,
        workers: int,
    ) -> JobRecord:
        from repro.delta.engine import delta_publish

        found = self.deltas.entry(name)
        if found is None:
            raise NotFoundError(
                f"no delta dataset named {name!r}; create one with a "
                "delta base publish first"
            )
        state, state_version = found
        if (rows is None) == (source is None):
            raise ServiceError("pass exactly one of rows= or source=")
        if workers <= 0:
            raise ServiceError("workers must be positive")
        spec = JobSpec(
            dataset=name,
            backend=state.strategy,
            params=dict(state.params),
            seed=state.seed,
            chunk_size=state.chunk_size,
            max_workers=int(workers),
            delta=True,
            source=str(source) if source is not None else "<rows>",
            sensitive=state.sensitive,
            chunk_rows=state.chunk_rows,
            output=state.output,
            rows_appended=len(rows) if rows is not None else None,
        )
        record = JobRecord(job_id=self.jobs.new_job_id(), spec=spec, status="running")
        self.jobs.add(record)
        start = time.perf_counter()
        _mark_event(record.events, "started", start, backend=spec.backend)

        def on_progress(event: Mapping[str, Any]) -> None:
            record.progress = dict(event)
            data = dict(event)
            phase = str(data.pop("phase", "progress"))
            _mark_event(record.events, phase, start, **data)
            # Write-through: a concurrent GET /jobs/<id> served by another
            # process sharing the store sees live progress, and a crash
            # leaves the record honest up to the last chunk boundary.
            self.jobs.update(record)

        try:
            report = delta_publish(
                state,
                rows if rows is not None else source,
                workers=int(workers),
                progress=on_progress,
            )
        except BaseException as exc:
            total = time.perf_counter() - start
            record.status = "failed"
            record.error = str(exc) or type(exc).__name__
            _mark_event(record.events, "failed", start, error=record.error)
            record.timings = JobTimings(
                group_index_seconds=0.0,
                publish_seconds=total,
                total_seconds=total,
                group_index_cached=False,
            )
            # The published file and the stored state are both untouched on
            # failure (the splice writes a temp file), so the dataset stays
            # appendable.
            if isinstance(exc, (ValueError, OSError)):
                raise ServiceError(f"job {record.job_id} failed: {exc}") from exc
            raise
        assert report.state is not None
        self._advance_delta_state(name, report.state, state_version, record, start)
        self._finish_delta_job(record, report, start)
        self._notify_dataset_changed(name)
        return record

    def _finish_delta_job(self, record: JobRecord, report: Any, start: float) -> None:
        """Complete a delta job record from the engine's report."""
        total = time.perf_counter() - start
        if record.spec.rows_appended is None:
            # A source-path append only knows its row count after the read.
            record.spec = dataclasses.replace(
                record.spec, rows_appended=report.rows_appended
            )
        _mark_event(
            record.events, "completed", start,
            published_records=report.published_records,
        )
        record.status = "completed"
        record.published_records = report.published_records
        record.metadata = {
            "mode": report.mode,
            "params": dict(report.params),
            "n_rows": report.n_rows,
            "rows_appended": report.rows_appended,
            "n_groups": report.n_groups,
            "groups_touched": report.groups_touched,
            "n_chunks": report.n_chunks,
            "n_chunks_dirty": report.n_chunks_dirty,
            "dirty_fraction": report.dirty_fraction,
            "output": report.output,
        }
        record.audit = AuditSummary.from_audit(report.audit) if report.audit else None
        record.timings = JobTimings(
            group_index_seconds=report.timings.get("group_index", 0.0),
            publish_seconds=total - report.timings.get("group_index", 0.0),
            total_seconds=total,
            group_index_cached=False,
        )
        self.jobs.add(record)

    def job(self, job_id: str) -> JobRecord:
        """Look one job record up by id."""
        return self.jobs.get(job_id)

    def published_table(self, job_id: str) -> Table:
        """Return the published table of a completed job still held in memory."""
        record = self.jobs.get(job_id)
        if record.published is None:
            raise ServiceError(
                f"job {job_id!r} has no published table in memory (failed job, "
                "record restored from a snapshot, or table evicted from the "
                "in-memory cache); re-run the publish with the same seed to "
                "regenerate it"
            )
        return record.published

    # ------------------------------------------------------------------ #
    # Audit
    # ------------------------------------------------------------------ #
    def audit(
        self,
        dataset: str,
        lam: float = 0.3,
        delta: float = 0.3,
        retention_probability: float = 0.5,
    ) -> dict[str, Any]:
        """Audit a registered dataset against a ``(lambda, delta, p)`` spec.

        Uses the cached group index, so repeated audits (and audits after a
        publish) skip the group-building cost.
        """
        entry = self.datasets.get(dataset)
        spec = PrivacySpec(
            lam=float(lam),
            delta=float(delta),
            retention_probability=float(retention_probability),
            domain_size=entry.table.schema.sensitive_domain_size,
        )
        index, index_seconds, cached = entry.groups()
        audit = audit_table(entry.table, spec, groups=index)
        worst = sorted(
            audit.violating_groups, key=lambda a: a.size / max(a.max_group_size, 1e-12)
        )[-5:][::-1]
        return {
            "dataset": dataset,
            "spec": {
                "lam": spec.lam,
                "delta": spec.delta,
                "retention_probability": spec.retention_probability,
                "domain_size": spec.domain_size,
            },
            "summary": AuditSummary.from_audit(audit).to_json(),
            "group_index_seconds": index_seconds,
            "group_index_cached": cached,
            "worst_violations": [
                {
                    "key": [int(k) for k in a.group.key],
                    "values": list(a.group.decoded_key(entry.table)),
                    "size": a.size,
                    "max_group_size": float(a.max_group_size),
                    "sampling_rate": float(a.sampling_rate),
                }
                for a in worst
            ],
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Service-level counters: datasets, jobs, cache behaviour, backends."""
        records = self.jobs.records()
        by_backend: dict[str, int] = {}
        for record in records:
            by_backend[record.spec.backend] = by_backend.get(record.spec.backend, 0) + 1
        entries = self.datasets.entries()
        payload: dict[str, Any] = {
            "version": __version__,
            "uptime_seconds": time.perf_counter() - self._started,
            "n_datasets": len(self.datasets),
            "n_jobs": len(records),
            "jobs_by_backend": by_backend,
            "jobs_failed": sum(1 for r in records if r.status == "failed"),
            "published_records_total": sum(r.published_records for r in records),
            "group_index_hits": sum(e.group_index_hits for e in entries),
            "group_index_misses": sum(e.group_index_misses for e in entries),
            "n_delta_datasets": len(self.deltas),
            "store": {
                "backend": self._store.backend,
                "location": self._store.location,
            },
            "backends": backend_descriptions(),
            "strategies": strategy_descriptions(),
        }
        if self._response_cache is not None:
            # The serving layer's request-level response cache, when one is
            # attached; existing keys are untouched so /stats consumers keep
            # working unchanged.
            payload["response_cache"] = self._response_cache.stats_payload()
        return payload

    def describe(self) -> dict[str, Any]:
        """One-call overview used by the CLI and the ``/`` endpoint."""
        return {
            "datasets": [entry.to_json() for entry in self.datasets.entries()],
            "jobs": [record.to_json() for record in self.jobs.records()],
            "backends": available_backends(),
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path | None = None) -> Path:
        """Ensure all state is on disk at ``path``; returns the path written.

        With no ``path``, the configured store path is used: the JSON
        backend flushes its snapshot, the SQLite backend is already durable
        (every mutation committed write-through), so this is a checkpoint
        no-op.  An explicit *different* ``path`` exports a full copy of the
        store there — documents, versions and counters — with the backend
        chosen from the path exactly as at construction.
        """
        target = Path(path) if path else self._snapshot_path
        if target is None:
            raise ServiceError("no snapshot path configured")
        if self._snapshot_path is not None and target == self._snapshot_path:
            if isinstance(self._store, JsonSnapshotConnector):
                self._store.flush()
            return target
        exported = open_store(target)
        try:
            # An export replaces the target's contents (the pre-connector
            # snapshot semantics), so drop any stale documents first.
            with exported.transaction(write=True) as txn:
                for namespace in txn.namespaces():
                    for key in txn.keys(namespace):
                        txn.delete(namespace, key)
            copy_store(self._store, exported)
        finally:
            exported.close()
        return target
