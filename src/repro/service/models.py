"""Wire- and store-level records of the anonymization service.

Everything the service persists or serves over HTTP is one of the dataclasses
here, together with plain-``dict`` codecs (``to_json`` / ``from_json``) built
on stdlib ``json``-compatible types only.  Tables are serialised as their
schema plus the integer code matrix, which round-trips exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.testing import PrivacyAudit
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.service.parallel import DEFAULT_CHUNK_SIZE


def schema_to_json(schema: Schema) -> dict[str, Any]:
    """Serialise a :class:`Schema` to JSON-compatible dicts."""
    return {
        "public": [{"name": a.name, "values": list(a.values)} for a in schema.public],
        "sensitive": {"name": schema.sensitive.name, "values": list(schema.sensitive.values)},
    }


def schema_from_json(data: dict[str, Any]) -> Schema:
    """Rebuild a :class:`Schema` from :func:`schema_to_json` output."""
    return Schema(
        public=tuple(Attribute(a["name"], tuple(a["values"])) for a in data["public"]),
        sensitive=Attribute(data["sensitive"]["name"], tuple(data["sensitive"]["values"])),
    )


def table_to_json(table: Table) -> dict[str, Any]:
    """Serialise a :class:`Table` (schema + integer codes) to JSON-compatible dicts."""
    return {
        "schema": schema_to_json(table.schema),
        "codes": table.codes.tolist(),
    }


def table_from_json(data: dict[str, Any]) -> Table:
    """Rebuild a :class:`Table` from :func:`table_to_json` output."""
    schema = schema_from_json(data["schema"])
    codes = np.asarray(data["codes"], dtype=np.int64)
    if codes.size == 0:
        codes = np.empty((0, len(schema.public) + 1), dtype=np.int64)
    return Table(schema, codes)


@dataclass(frozen=True)
class AuditSummary:
    """The serialisable core of a :class:`~repro.core.testing.PrivacyAudit`."""

    n_groups: int
    n_violating_groups: int
    group_violation_rate: float
    record_violation_rate: float
    total_records: int
    is_private: bool

    @classmethod
    def from_audit(cls, audit: PrivacyAudit) -> "AuditSummary":
        """Summarise a full audit into the rates the service reports per job."""
        return cls(
            n_groups=audit.n_groups,
            n_violating_groups=len(audit.violating_groups),
            group_violation_rate=float(audit.group_violation_rate),
            record_violation_rate=float(audit.record_violation_rate),
            total_records=audit.total_records,
            is_private=audit.is_private,
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "n_groups": self.n_groups,
            "n_violating_groups": self.n_violating_groups,
            "group_violation_rate": self.group_violation_rate,
            "record_violation_rate": self.record_violation_rate,
            "total_records": self.total_records,
            "is_private": self.is_private,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "AuditSummary":
        return cls(
            n_groups=int(data["n_groups"]),
            n_violating_groups=int(data["n_violating_groups"]),
            group_violation_rate=float(data["group_violation_rate"]),
            record_violation_rate=float(data["record_violation_rate"]),
            total_records=int(data["total_records"]),
            is_private=bool(data["is_private"]),
        )


@dataclass(frozen=True)
class JobSpec:
    """What a publish job was asked to do.

    A *stream* job (``stream=True``) publishes straight from a CSV
    ``source`` out-of-core instead of a registered dataset; ``chunk_rows``
    bounds its ingestion memory and ``output`` names the CSV sink the
    published rows streamed to (``None`` when the table was kept in memory).

    A *delta* job (``delta=True``) runs through :mod:`repro.delta`:
    either a base publish that captures a re-publishable dataset's state, or
    an append that splices new rows into the published CSV incrementally.
    ``source`` then names the appended CSV (or ``"<rows>"`` for an inline
    row batch), ``rows_appended`` counts the rows folded in, and ``output``
    is the published CSV the splice rewrote.
    """

    dataset: str
    backend: str
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    chunk_size: int = DEFAULT_CHUNK_SIZE
    max_workers: int = 1
    stream: bool = False
    source: str | None = None
    sensitive: str | None = None
    chunk_rows: int | None = None
    output: str | None = None
    delta: bool = False
    rows_appended: int | None = None

    def to_json(self) -> dict[str, Any]:
        data = {
            "dataset": self.dataset,
            "backend": self.backend,
            "params": dict(self.params),
            "seed": self.seed,
            "chunk_size": self.chunk_size,
            "max_workers": self.max_workers,
        }
        if self.stream:
            data.update(
                stream=True,
                source=self.source,
                sensitive=self.sensitive,
                chunk_rows=self.chunk_rows,
                output=self.output,
            )
        if self.delta:
            data.update(
                delta=True,
                source=self.source,
                sensitive=self.sensitive,
                chunk_rows=self.chunk_rows,
                output=self.output,
                rows_appended=self.rows_appended,
            )
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobSpec":
        chunk_rows = data.get("chunk_rows")
        return cls(
            dataset=str(data["dataset"]),
            backend=str(data["backend"]),
            params=dict(data.get("params", {})),
            seed=int(data.get("seed", 0)),
            chunk_size=int(data.get("chunk_size", DEFAULT_CHUNK_SIZE)),
            max_workers=int(data.get("max_workers", 1)),
            stream=bool(data.get("stream", False)),
            source=data.get("source"),
            sensitive=data.get("sensitive"),
            chunk_rows=int(chunk_rows) if chunk_rows is not None else None,
            output=data.get("output"),
            delta=bool(data.get("delta", False)),
            rows_appended=(
                int(data["rows_appended"])
                if data.get("rows_appended") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class JobTimings:
    """Wall-clock breakdown of one publish job (seconds)."""

    group_index_seconds: float
    publish_seconds: float
    total_seconds: float
    group_index_cached: bool

    def to_json(self) -> dict[str, Any]:
        return {
            "group_index_seconds": self.group_index_seconds,
            "publish_seconds": self.publish_seconds,
            "total_seconds": self.total_seconds,
            "group_index_cached": self.group_index_cached,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobTimings":
        return cls(
            group_index_seconds=float(data["group_index_seconds"]),
            publish_seconds=float(data["publish_seconds"]),
            total_seconds=float(data["total_seconds"]),
            group_index_cached=bool(data["group_index_cached"]),
        )


@dataclass
class JobRecord:
    """One completed publish job: its spec, timings, audit and output summary.

    The published :class:`Table` itself is kept in process memory (it can be
    large); snapshots persist every other field so a restarted service still
    knows the full job history.
    """

    job_id: str
    spec: JobSpec
    status: str
    timings: JobTimings | None = None
    audit: AuditSummary | None = None
    published_records: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    #: Live progress of a stream job (phase, rows read, records published);
    #: updated while the job runs, so ``GET /jobs/<id>`` shows it mid-flight,
    #: and persisted with the record.
    progress: dict[str, Any] = field(default_factory=dict)
    #: The job's event timeline: one ``{"event", "elapsed", ...}`` dict per
    #: phase transition, in order (consecutive updates of the same phase are
    #: coalesced, so the sequence is deterministic for a given job shape).
    #: Persisted with the record and served by ``GET /jobs/<id>``.
    events: list[dict[str, Any]] = field(default_factory=list)
    published: Table | None = field(default=None, repr=False, compare=False)

    def to_json(self, include_table: bool = False) -> dict[str, Any]:
        data: dict[str, Any] = {
            "job_id": self.job_id,
            "spec": self.spec.to_json(),
            "status": self.status,
            "timings": self.timings.to_json() if self.timings else None,
            "audit": self.audit.to_json() if self.audit else None,
            "published_records": self.published_records,
            "metadata": dict(self.metadata),
            "error": self.error,
        }
        if self.progress:
            data["progress"] = dict(self.progress)
        if self.events:
            data["events"] = [dict(event) for event in self.events]
        if include_table and self.published is not None:
            data["published"] = table_to_json(self.published)
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobRecord":
        published = data.get("published")
        return cls(
            job_id=str(data["job_id"]),
            spec=JobSpec.from_json(data["spec"]),
            status=str(data["status"]),
            timings=JobTimings.from_json(data["timings"]) if data.get("timings") else None,
            audit=AuditSummary.from_json(data["audit"]) if data.get("audit") else None,
            published_records=int(data.get("published_records", 0)),
            metadata=dict(data.get("metadata", {})),
            error=data.get("error"),
            progress=dict(data.get("progress", {})),
            events=[dict(event) for event in data.get("events", [])],
            published=table_from_json(published) if published else None,
        )
