"""The service's chunk executor — now a thin veneer over :mod:`repro.parallel`.

The chunking and per-chunk seeding scheme lives in
:mod:`repro.pipeline.execution` (it is the library/service-shared
determinism contract: the published table depends only on the seed and the
chunk size, never on the worker count or scheduling order).  Fan-out is the
shared scheduler's job (:func:`repro.parallel.run_chunks`): a process pool
by default — real multi-core scaling for the numpy-light per-group kernels
the GIL used to throttle — with ``backend="thread"`` kept as the cheap
fallback for tiny jobs and for kernels that cannot cross a process
boundary.

``max_workers=1`` and ``max_workers=32`` produce byte-identical output on
every backend, which keeps the service's parallel hot path testable against
the library's sequential reference
(:func:`repro.pipeline.execution.run_chunks_serial`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

import numpy as np

from repro.parallel import DEFAULT_BACKEND, PARALLEL_BACKENDS, run_chunks
from repro.pipeline.execution import DEFAULT_CHUNK_SIZE, chunk_items, chunk_rngs

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_CHUNK_SIZE",
    "PARALLEL_BACKENDS",
    "chunk_items",
    "chunk_rngs",
    "run_chunked",
]

T = TypeVar("T")
R = TypeVar("R")


def run_chunked(
    items: Sequence[T],
    chunk_fn: Callable[[Sequence[T], np.random.Generator], R],
    seed: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_workers: int = 1,
    backend: str = DEFAULT_BACKEND,
) -> list[R]:
    """Apply ``chunk_fn(chunk, rng)`` to every chunk and return results in chunk order.

    ``max_workers <= 1`` runs inline (no executor) — the sequential
    reference for determinism tests and the cheapest path for small jobs.
    Otherwise the shared scheduler fans the chunks out; ``backend`` selects
    ``"process"`` (default via ``"auto"`` when the kernel pickles),
    ``"thread"`` or ``"serial"``.
    """
    return run_chunks(
        items, chunk_fn, seed, chunk_size, workers=max_workers, backend=backend
    )
