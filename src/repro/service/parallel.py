"""Thread-pool chunk execution for the service.

The chunking and per-chunk seeding scheme lives in
:mod:`repro.pipeline.execution` (it is the library/service-shared
determinism contract: the published table depends only on the seed and the
chunk size, never on the worker count or scheduling order).  This module adds
the one thing that is a service concern: fanning those chunks out over a
``concurrent.futures`` thread pool.

``max_workers=1`` and ``max_workers=32`` produce byte-identical output, which
makes the service's parallel hot path testable against the library's
sequential reference (:func:`repro.pipeline.execution.run_chunks_serial`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

import numpy as np

from repro.pipeline.execution import DEFAULT_CHUNK_SIZE, chunk_items, chunk_rngs

__all__ = ["DEFAULT_CHUNK_SIZE", "chunk_items", "chunk_rngs", "run_chunked"]

T = TypeVar("T")
R = TypeVar("R")


def run_chunked(
    items: Sequence[T],
    chunk_fn: Callable[[Sequence[T], np.random.Generator], R],
    seed: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_workers: int = 1,
) -> list[R]:
    """Apply ``chunk_fn(chunk, rng)`` to every chunk and return results in chunk order.

    ``max_workers <= 1`` runs inline (no executor), which is both the
    sequential reference for determinism tests and the cheapest path for
    small jobs.
    """
    chunks = chunk_items(items, chunk_size)
    rngs = chunk_rngs(seed, len(chunks))
    if max_workers <= 1 or len(chunks) <= 1:
        return [chunk_fn(chunk, rng) for chunk, rng in zip(chunks, rngs)]
    with ThreadPoolExecutor(max_workers=max_workers) as executor:
        futures = [
            executor.submit(chunk_fn, chunk, rng) for chunk, rng in zip(chunks, rngs)
        ]
        return [future.result() for future in futures]
