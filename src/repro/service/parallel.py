"""Deterministic chunked fan-out over personal groups.

The engine's parallelism contract is: *the published table depends only on
the seed and the chunk size, never on the worker count or scheduling order*.
That holds because

1. the group list is split into fixed-size chunks **before** any worker runs;
2. each chunk gets its own child generator derived from
   ``numpy.random.SeedSequence(seed).spawn(n_chunks)`` (the spawn tree is a
   pure function of the root seed);
3. chunk outputs are concatenated in chunk order, whatever order the workers
   finished in.

So ``max_workers=1`` and ``max_workers=32`` produce byte-identical output,
which makes the service's parallel hot path testable against its sequential
reference.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

#: Default number of personal groups per work chunk.
DEFAULT_CHUNK_SIZE = 256


def chunk_items(items: Sequence[T], chunk_size: int) -> list[Sequence[T]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]


def chunk_rngs(seed: int, n_chunks: int) -> list[np.random.Generator]:
    """Derive one independent, reproducible generator per chunk from ``seed``."""
    if n_chunks == 0:
        return []
    children = np.random.SeedSequence(seed).spawn(n_chunks)
    return [np.random.default_rng(child) for child in children]


def run_chunked(
    items: Sequence[T],
    chunk_fn: Callable[[Sequence[T], np.random.Generator], R],
    seed: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_workers: int = 1,
) -> list[R]:
    """Apply ``chunk_fn(chunk, rng)`` to every chunk and return results in chunk order.

    ``max_workers <= 1`` runs inline (no executor), which is both the
    sequential reference for determinism tests and the cheapest path for
    small jobs.
    """
    chunks = chunk_items(items, chunk_size)
    rngs = chunk_rngs(seed, len(chunks))
    if max_workers <= 1 or len(chunks) <= 1:
        return [chunk_fn(chunk, rng) for chunk, rng in zip(chunks, rngs)]
    with ThreadPoolExecutor(max_workers=max_workers) as executor:
        futures = [
            executor.submit(chunk_fn, chunk, rng) for chunk, rng in zip(chunks, rngs)
        ]
        return [future.result() for future in futures]
