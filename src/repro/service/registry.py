"""Dataset registry and job store, write-through over a storage connector.

A dataset is registered once and then serves many publish/audit requests.
The dominant cost of every SPS-family request is building the
:class:`~repro.dataset.groups.GroupIndex`, so :class:`DatasetEntry` builds it
lazily on first use and caches it (plus any chi-square generalisation of the
table, keyed by significance level) for all subsequent jobs; the entry tracks
cache hits/misses and build times so ``/stats`` can prove the cache is doing
its job.

Since the :mod:`repro.store` connector landed, both registries persist
write-through: every register, job record and built group index lands in the
configured :class:`~repro.store.base.StorageConnector` inside the mutating
call, not at shutdown — so a ``kill -9`` loses nothing that was committed.
Constructed without a store they fall back to a private in-memory connector
(the pre-connector behaviour).  Job ids come from the store's durable
counter, so they are monotonic across restarts *and* across processes
sharing one SQLite store; duplicate-register races surface as
:class:`ServiceError` via the store's optimistic versioning, never as a lost
update.

Both registries are thread-safe: the HTTP front end is a
``ThreadingHTTPServer`` and the engine fans publish work out over threads.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

from repro.dataset.groups import GroupIndex, personal_groups
from repro.dataset.table import Table
from repro.generalization.merging import GeneralizationResult, generalize_table
from repro.obs.trace import span
from repro.service.models import JobRecord, table_from_json, table_to_json
from repro.store.base import (
    COUNTER_JOB_IDS,
    NS_DATASET_CACHES,
    NS_DATASETS,
    NS_JOBS,
    StorageConnector,
    StoreError,
    VersionConflictError,
)
from repro.store.legacy import load_snapshot, save_snapshot  # noqa: F401  (compat re-export)
from repro.store.memory import MemoryConnector

#: Group indexes over tables larger than this are rebuilt on restart rather
#: than persisted — the serialised index is O(rows) and would dominate the
#: store beyond this point.
MAX_PERSISTED_INDEX_ROWS = 100_000


class ServiceError(ValueError):
    """Raised for client-level service failures (bad spec, duplicate name...)."""


class NotFoundError(ServiceError):
    """Raised when a named dataset or job does not exist."""


def _private_store() -> StorageConnector:
    """The store used when a registry is constructed without one."""
    return MemoryConnector().open()


class DatasetEntry:
    """One registered table plus its cached derived indexes."""

    def __init__(self, name: str, table: Table) -> None:
        self.name = name
        self.table = table
        self._lock = threading.Lock()
        self._groups: GroupIndex | None = None
        self._cached_parts: dict[str, Any] | None = None
        self._generalizations: dict[float, GeneralizationResult] = {}
        self._generalized_groups: dict[float, GroupIndex] = {}
        self.group_index_seconds = 0.0
        self.group_index_hits = 0
        self.group_index_misses = 0
        #: Called (outside the entry lock) after a group index is built, so
        #: the owning registry can persist the cache write-through.
        self.on_cache_built: Callable[[DatasetEntry], None] | None = None

    @property
    def n_records(self) -> int:
        """Number of records in the registered table."""
        return len(self.table)

    def groups(self) -> tuple[GroupIndex, float, bool]:
        """Return the personal-group index, its build time, and whether it was cached.

        The build time is the wall-clock cost actually paid by *this* call:
        zero on a cache hit.  A cache restored from the store (a service
        restart) counts as a hit — the restored parts are materialised
        without re-sorting the table.
        """
        notify: Callable[[DatasetEntry], None] | None = None
        with self._lock:
            if self._groups is not None:
                self.group_index_hits += 1
                return self._groups, 0.0, True
            if self._cached_parts is not None:
                parts, self._cached_parts = self._cached_parts, None
                try:
                    self._groups = GroupIndex.from_parts(self.table, parts)
                except (KeyError, TypeError, ValueError):
                    self._groups = None  # stale/corrupt cache: rebuild below
                if self._groups is not None:
                    self.group_index_hits += 1
                    return self._groups, 0.0, True
            with span("group_index_build", kind="cache", dataset=self.name) as sp:
                self._groups = personal_groups(self.table)
            elapsed = sp.duration
            self.group_index_seconds = elapsed
            self.group_index_misses += 1
            index = self._groups
            notify = self.on_cache_built
        if notify is not None:
            notify(self)
        return index, elapsed, False

    def generalized(self, significance: float) -> tuple[GeneralizationResult, GroupIndex, float, bool]:
        """Chi-square generalised table + its group index, cached per significance."""
        key = float(significance)
        with self._lock:
            if key in self._generalizations:
                self.group_index_hits += 1
                return self._generalizations[key], self._generalized_groups[key], 0.0, True
            with span(
                "generalize_build", kind="cache", dataset=self.name, significance=key
            ) as sp:
                result = generalize_table(self.table, significance=key)
                index = personal_groups(result.table)
            elapsed = sp.duration
            self._generalizations[key] = result
            self._generalized_groups[key] = index
            self.group_index_misses += 1
            return result, index, elapsed, False

    def cache_payload(self) -> dict[str, Any] | None:
        """Serialisable snapshot of the built group index, or ``None``.

        Tables above :data:`MAX_PERSISTED_INDEX_ROWS` return ``None`` — the
        serialised index is O(rows) and rebuilding is cheap relative to
        storing it.
        """
        with self._lock:
            if self._groups is None or len(self.table) > MAX_PERSISTED_INDEX_ROWS:
                return None
            return {
                "group_index": self._groups.to_parts(),
                "group_index_seconds": self.group_index_seconds,
            }

    def restore_cache(self, payload: dict[str, Any]) -> None:
        """Adopt a persisted cache payload; materialised lazily on first use."""
        with self._lock:
            if self._groups is not None:
                return
            parts = payload.get("group_index")
            self._cached_parts = dict(parts) if isinstance(parts, dict) else None
            self.group_index_seconds = float(payload.get("group_index_seconds", 0.0))

    def to_json(self) -> dict[str, Any]:
        """Serialisable description of the entry (without the code matrix)."""
        with self._lock:
            cached = self._groups is not None or self._cached_parts is not None
            n_groups = len(self._groups) if self._groups is not None else None
        return {
            "name": self.name,
            "n_records": self.n_records,
            "public_attributes": list(self.table.schema.public_names),
            "sensitive_attribute": self.table.schema.sensitive_name,
            "sensitive_domain_size": self.table.schema.sensitive_domain_size,
            "n_groups": n_groups,
            "group_index_cached": cached,
            "group_index_seconds": self.group_index_seconds,
            "group_index_hits": self.group_index_hits,
            "group_index_misses": self.group_index_misses,
        }


class DatasetRegistry:
    """Named registry of :class:`DatasetEntry` objects over a connector.

    Tables persist write-through as schema + integer code matrix; built
    group indexes persist as derived-cache payloads (restored lazily on
    restart); a duplicate register racing another writer on a shared store
    loses with a typed :class:`ServiceError`, not a lost update.
    """

    def __init__(self, store: StorageConnector | None = None) -> None:
        self._lock = threading.RLock()
        self._store = store if store is not None else _private_store()
        self._entries: dict[str, DatasetEntry] = {}
        self._load()

    @property
    def store(self) -> StorageConnector:
        """The connector this registry persists through."""
        return self._store

    def _load(self) -> None:
        for name, stored in self._store.items(NS_DATASETS):
            entry = self._adopt(name, table_from_json(stored.value))
            cached = self._store.get(NS_DATASET_CACHES, name)
            if cached is not None and isinstance(cached.value, dict):
                entry.restore_cache(cached.value)
            self._entries[name] = entry

    def _adopt(self, name: str, table: Table) -> DatasetEntry:
        entry = DatasetEntry(name, table)
        entry.on_cache_built = self._persist_cache
        return entry

    def _persist_cache(self, entry: DatasetEntry) -> None:
        payload = entry.cache_payload()
        if payload is None:
            return
        try:
            self._store.put(NS_DATASET_CACHES, entry.name, payload)
        except StoreError:
            # Cache persistence is an optimisation; a failure to store it
            # must never fail the publish that built the index.
            pass

    def register(self, name: str, table: Table, replace: bool = False) -> DatasetEntry:
        """Register ``table`` under ``name``; rejects duplicates unless ``replace``.

        The duplicate check runs in the store, so two processes racing the
        same name on a shared backend cannot both win.
        """
        if not name:
            raise ServiceError("dataset name must be non-empty")
        with self._lock:
            if name in self._entries and not replace:
                raise ServiceError(f"dataset {name!r} is already registered")
            try:
                with self._store.transaction(write=True) as txn:
                    txn.put(
                        NS_DATASETS,
                        name,
                        table_to_json(table),
                        expected_version=None if replace else 0,
                    )
                    # Any persisted derived cache belongs to the old table.
                    txn.delete(NS_DATASET_CACHES, name)
            except VersionConflictError:
                raise ServiceError(f"dataset {name!r} is already registered") from None
            entry = self._adopt(name, table)
            self._entries[name] = entry
            return entry

    def get(self, name: str) -> DatasetEntry:
        """Return the entry for ``name`` (raises :class:`ServiceError` if unknown)."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                known = sorted(self._entries)
                raise NotFoundError(
                    f"unknown dataset {name!r}; registered datasets: {known}"
                ) from None

    def drop(self, name: str) -> None:
        """Remove a dataset (raises :class:`ServiceError` if unknown)."""
        with self._lock:
            if name not in self._entries:
                raise NotFoundError(f"unknown dataset {name!r}")
            with self._store.transaction(write=True) as txn:
                txn.delete(NS_DATASETS, name)
                txn.delete(NS_DATASET_CACHES, name)
            del self._entries[name]

    def names(self) -> list[str]:
        """Registered dataset names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> list[DatasetEntry]:
        """All entries, sorted by name."""
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries


def _job_sort_key(job_id: str) -> tuple[int, str]:
    suffix = job_id.rsplit("-", 1)[-1]
    return (int(suffix), job_id) if suffix.isdigit() else (1 << 62, job_id)


class JobStore:
    """Append-only store of publish jobs with sequential, durable ids.

    Job *records* (spec, timings, audit, progress, events) persist
    write-through on every :meth:`add`/:meth:`update`; published *tables*
    are memory-heavy, so only the ``max_published_tables`` most recent ones
    stay resident — older jobs keep their full record but drop the table,
    exactly as they would after a restart.  Ids come from the connector's
    durable counter (:data:`~repro.store.base.COUNTER_JOB_IDS`), so they
    continue monotonically across restarts and across processes sharing one
    SQLite store.  A record persisted as ``running`` when the process died
    is reloaded as ``interrupted`` — the store never claims a crashed job
    completed.
    """

    #: How many published tables a long-lived service keeps in memory.
    DEFAULT_MAX_PUBLISHED_TABLES = 16

    def __init__(
        self,
        max_published_tables: int = DEFAULT_MAX_PUBLISHED_TABLES,
        store: StorageConnector | None = None,
    ) -> None:
        if max_published_tables < 1:
            raise ValueError("max_published_tables must be at least 1")
        self._lock = threading.RLock()
        self._store = store if store is not None else _private_store()
        self._jobs: dict[str, JobRecord] = {}
        self._max_published_tables = max_published_tables
        self._with_tables: list[str] = []
        self._load()

    @property
    def store(self) -> StorageConnector:
        """The connector this job store persists through."""
        return self._store

    def _load(self) -> None:
        loaded = sorted(self._store.items(NS_JOBS), key=lambda kv: _job_sort_key(kv[0]))
        for job_id, stored in loaded:
            record = JobRecord.from_json(stored.value)
            if record.status == "running":
                # The owning process died mid-job; completed work was
                # persisted by the job itself, so "running" can only mean
                # the crash interrupted it.
                record.status = "interrupted"
                record.error = "service restarted while the job was running"
                self._store.put(NS_JOBS, job_id, record.to_json())
            self._jobs[job_id] = record

    def new_job_id(self) -> str:
        """Allocate the next id from the store's durable, race-free counter."""
        return f"job-{self._store.next_value(COUNTER_JOB_IDS):04d}"

    @property
    def last_job_number(self) -> int:
        """The highest job number issued so far (0 when none)."""
        return self._store.peek(COUNTER_JOB_IDS)

    def add(self, record: JobRecord) -> None:
        """Insert or overwrite a record, persist it, and cap resident tables."""
        with self._lock:
            self._store.put(NS_JOBS, record.job_id, record.to_json())
            self._jobs[record.job_id] = record
            if record.published is not None:
                self._with_tables.append(record.job_id)
                while len(self._with_tables) > self._max_published_tables:
                    evicted = self._with_tables.pop(0)
                    self._jobs[evicted].published = None

    def update(self, record: JobRecord) -> None:
        """Persist a record's current state (live progress, event timeline).

        Unlike :meth:`add` this never touches the resident-table cap, so it
        is safe to call from progress callbacks while a job runs.
        """
        with self._lock:
            self._store.put(NS_JOBS, record.job_id, record.to_json())
            self._jobs[record.job_id] = record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise NotFoundError(f"unknown job {job_id!r}") from None

    def records(self) -> list[JobRecord]:
        """All job records in creation order."""
        with self._lock:
            return list(self._jobs.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
