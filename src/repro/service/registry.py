"""Dataset registry and job store (in memory, JSON snapshot persistence).

A dataset is registered once and then serves many publish/audit requests.
The dominant cost of every SPS-family request is building the
:class:`~repro.dataset.groups.GroupIndex`, so :class:`DatasetEntry` builds it
lazily on first use and caches it (plus any chi-square generalisation of the
table, keyed by significance level) for all subsequent jobs; the entry tracks
cache hits/misses and build times so ``/stats`` can prove the cache is doing
its job.

Both registries are thread-safe: the HTTP front end is a
``ThreadingHTTPServer`` and the engine fans publish work out over threads.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any

from repro.dataset.groups import GroupIndex, personal_groups
from repro.dataset.table import Table
from repro.generalization.merging import GeneralizationResult, generalize_table
from repro.obs.trace import span
from repro.service.models import JobRecord, table_from_json, table_to_json


class ServiceError(ValueError):
    """Raised for client-level service failures (bad spec, duplicate name...)."""


class NotFoundError(ServiceError):
    """Raised when a named dataset or job does not exist."""


class DatasetEntry:
    """One registered table plus its cached derived indexes."""

    def __init__(self, name: str, table: Table) -> None:
        self.name = name
        self.table = table
        self._lock = threading.Lock()
        self._groups: GroupIndex | None = None
        self._generalizations: dict[float, GeneralizationResult] = {}
        self._generalized_groups: dict[float, GroupIndex] = {}
        self.group_index_seconds = 0.0
        self.group_index_hits = 0
        self.group_index_misses = 0

    @property
    def n_records(self) -> int:
        """Number of records in the registered table."""
        return len(self.table)

    def groups(self) -> tuple[GroupIndex, float, bool]:
        """Return the personal-group index, its build time, and whether it was cached.

        The build time is the wall-clock cost actually paid by *this* call:
        zero on a cache hit.
        """
        with self._lock:
            if self._groups is not None:
                self.group_index_hits += 1
                return self._groups, 0.0, True
            with span("group_index_build", kind="cache", dataset=self.name) as sp:
                self._groups = personal_groups(self.table)
            elapsed = sp.duration
            self.group_index_seconds = elapsed
            self.group_index_misses += 1
            return self._groups, elapsed, False

    def generalized(self, significance: float) -> tuple[GeneralizationResult, GroupIndex, float, bool]:
        """Chi-square generalised table + its group index, cached per significance."""
        key = float(significance)
        with self._lock:
            if key in self._generalizations:
                self.group_index_hits += 1
                return self._generalizations[key], self._generalized_groups[key], 0.0, True
            with span(
                "generalize_build", kind="cache", dataset=self.name, significance=key
            ) as sp:
                result = generalize_table(self.table, significance=key)
                index = personal_groups(result.table)
            elapsed = sp.duration
            self._generalizations[key] = result
            self._generalized_groups[key] = index
            self.group_index_misses += 1
            return result, index, elapsed, False

    def to_json(self) -> dict[str, Any]:
        """Serialisable description of the entry (without the code matrix)."""
        with self._lock:
            n_groups = len(self._groups) if self._groups is not None else None
        return {
            "name": self.name,
            "n_records": self.n_records,
            "public_attributes": list(self.table.schema.public_names),
            "sensitive_attribute": self.table.schema.sensitive_name,
            "sensitive_domain_size": self.table.schema.sensitive_domain_size,
            "n_groups": n_groups,
            "group_index_cached": self._groups is not None,
            "group_index_seconds": self.group_index_seconds,
            "group_index_hits": self.group_index_hits,
            "group_index_misses": self.group_index_misses,
        }


class DatasetRegistry:
    """Named registry of :class:`DatasetEntry` objects."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: dict[str, DatasetEntry] = {}

    def register(self, name: str, table: Table, replace: bool = False) -> DatasetEntry:
        """Register ``table`` under ``name``; rejects duplicates unless ``replace``."""
        if not name:
            raise ServiceError("dataset name must be non-empty")
        with self._lock:
            if name in self._entries and not replace:
                raise ServiceError(f"dataset {name!r} is already registered")
            entry = DatasetEntry(name, table)
            self._entries[name] = entry
            return entry

    def get(self, name: str) -> DatasetEntry:
        """Return the entry for ``name`` (raises :class:`ServiceError` if unknown)."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                known = sorted(self._entries)
                raise NotFoundError(
                    f"unknown dataset {name!r}; registered datasets: {known}"
                ) from None

    def drop(self, name: str) -> None:
        """Remove a dataset (raises :class:`ServiceError` if unknown)."""
        with self._lock:
            if name not in self._entries:
                raise NotFoundError(f"unknown dataset {name!r}")
            del self._entries[name]

    def names(self) -> list[str]:
        """Registered dataset names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> list[DatasetEntry]:
        """All entries, sorted by name."""
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries


class JobStore:
    """Append-only store of publish jobs with sequential ids.

    Job *records* (spec, timings, audit) are kept forever; published
    *tables* are memory-heavy, so only the ``max_published_tables`` most
    recent ones stay resident — older jobs keep their full record but drop
    the table, exactly as they would after a snapshot restore.
    """

    #: How many published tables a long-lived service keeps in memory.
    DEFAULT_MAX_PUBLISHED_TABLES = 16

    def __init__(self, max_published_tables: int = DEFAULT_MAX_PUBLISHED_TABLES) -> None:
        if max_published_tables < 1:
            raise ValueError("max_published_tables must be at least 1")
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._next_id = 1
        self._max_published_tables = max_published_tables
        self._with_tables: list[str] = []

    def new_job_id(self) -> str:
        with self._lock:
            job_id = f"job-{self._next_id:04d}"
            self._next_id += 1
            return job_id

    def add(self, record: JobRecord) -> None:
        with self._lock:
            self._jobs[record.job_id] = record
            if record.published is not None:
                self._with_tables.append(record.job_id)
                while len(self._with_tables) > self._max_published_tables:
                    evicted = self._with_tables.pop(0)
                    self._jobs[evicted].published = None

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise NotFoundError(f"unknown job {job_id!r}") from None

    def records(self) -> list[JobRecord]:
        """All job records in creation order."""
        with self._lock:
            return list(self._jobs.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------ #
    # Snapshot persistence (shared with DatasetRegistry)
    # ------------------------------------------------------------------ #


def save_snapshot(path: str | Path, datasets: DatasetRegistry, jobs: JobStore) -> None:
    """Write a JSON snapshot of the registered datasets and the job history.

    Dataset tables round-trip exactly (schema + code matrix); job records are
    persisted without their published tables, which are process-local.
    """
    payload = {
        "version": 1,
        "datasets": {
            entry.name: table_to_json(entry.table) for entry in datasets.entries()
        },
        "jobs": [record.to_json() for record in jobs.records()],
        "next_job_id": jobs._next_id,
    }
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(path)


def load_snapshot(path: str | Path) -> tuple[DatasetRegistry, JobStore]:
    """Rebuild a registry and job store from :func:`save_snapshot` output."""
    payload = json.loads(Path(path).read_text())
    datasets = DatasetRegistry()
    for name, table_data in payload.get("datasets", {}).items():
        datasets.register(name, table_from_json(table_data))
    jobs = JobStore()
    for job_data in payload.get("jobs", []):
        jobs.add(JobRecord.from_json(job_data))
    jobs._next_id = int(payload.get("next_job_id", len(jobs) + 1))
    return datasets, jobs
