"""In-memory storage connector: the test double and the store-less default.

Semantics match the SQLite backend exactly — values are encoded to canonical
JSON at the boundary, versions and counters behave identically, and a
transaction that raises leaves nothing behind (writes are staged and applied
only on commit).  One re-entrant lock serialises transactions, so the
connector is thread-safe but, being process-local, offers no cross-process
durability: that is what :class:`~repro.store.sqlite.SqliteConnector` is for.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from collections.abc import Iterator
from typing import Any

from repro.store.base import (
    StorageConnector,
    StoreTransaction,
    VersionConflictError,
    VersionedValue,
    check_names,
    decode_value,
    encode_value,
)

#: Sentinel marking a staged deletion in a transaction's write set.
_DELETED = object()


class _MemoryTransaction(StoreTransaction):
    """Stages writes over the connector's maps; commit applies them."""

    def __init__(
        self,
        backend: str,
        write: bool,
        data: dict[str, dict[str, tuple[int, str]]],
        counters: dict[str, int],
    ) -> None:
        super().__init__(backend, write)
        self._data = data
        self._base_counters = counters
        #: Staged writes: (namespace, key) -> (version, text) or _DELETED.
        self._staged: dict[tuple[str, str], Any] = {}
        self._staged_counters: dict[str, int] = {}

    # -- reads --------------------------------------------------------- #
    def _lookup(self, namespace: str, key: str) -> tuple[int, str] | None:
        staged = self._staged.get((namespace, key))
        if staged is _DELETED:
            return None
        if staged is not None:
            version, text = staged
            return int(version), str(text)
        stored = self._data.get(namespace, {}).get(key)
        return stored

    def get(self, namespace: str, key: str) -> VersionedValue | None:
        check_names(namespace, key)
        self._count("get")
        stored = self._lookup(namespace, key)
        if stored is None:
            return None
        version, text = stored
        return VersionedValue(value=decode_value(text), version=version)

    def _namespace_view(self, namespace: str) -> dict[str, tuple[int, str]]:
        view = dict(self._data.get(namespace, {}))
        for (ns, key), staged in self._staged.items():
            if ns != namespace:
                continue
            if staged is _DELETED:
                view.pop(key, None)
            else:
                view[key] = staged
        return view

    def keys(self, namespace: str) -> list[str]:
        check_names(namespace)
        self._count("list")
        return sorted(self._namespace_view(namespace))

    def items(self, namespace: str) -> list[tuple[str, VersionedValue]]:
        check_names(namespace)
        self._count("list")
        view = self._namespace_view(namespace)
        return [
            (key, VersionedValue(value=decode_value(text), version=version))
            for key, (version, text) in sorted(view.items())
        ]

    def namespaces(self) -> list[str]:
        self._count("list")
        names = {ns for ns, entries in self._data.items() if entries}
        for (ns, _key), staged in self._staged.items():
            if staged is not _DELETED:
                names.add(ns)
        return sorted(ns for ns in names if self._namespace_view(ns))

    def peek(self, counter: str) -> int:
        check_names(counter)
        self._count("counter")
        if counter in self._staged_counters:
            return self._staged_counters[counter]
        return self._base_counters.get(counter, 0)

    def counters(self) -> dict[str, int]:
        self._count("counter")
        merged = dict(self._base_counters)
        merged.update(self._staged_counters)
        return merged

    # -- writes -------------------------------------------------------- #
    def put(
        self, namespace: str, key: str, value: Any, expected_version: int | None = None
    ) -> int:
        check_names(namespace, key)
        self._require_write("put")
        self._count("put")
        text = encode_value(value)
        stored = self._lookup(namespace, key)
        current = stored[0] if stored is not None else 0
        if expected_version is not None and expected_version != current:
            raise VersionConflictError(namespace, key, expected_version, current)
        new_version = current + 1
        self._staged[(namespace, key)] = (new_version, text)
        return new_version

    def delete(
        self, namespace: str, key: str, expected_version: int | None = None
    ) -> bool:
        check_names(namespace, key)
        self._require_write("delete")
        self._count("delete")
        stored = self._lookup(namespace, key)
        if stored is None:
            if expected_version not in (None, 0):
                raise VersionConflictError(namespace, key, expected_version, 0)
            return False
        if expected_version is not None and expected_version != stored[0]:
            raise VersionConflictError(namespace, key, expected_version, stored[0])
        self._staged[(namespace, key)] = _DELETED
        return True

    def next_value(self, counter: str) -> int:
        check_names(counter)
        self._require_write("counter")
        self._count("counter")
        value = self.peek(counter) + 1
        self._staged_counters[counter] = value
        return value

    def restore(self, namespace: str, key: str, value: Any, version: int) -> None:
        check_names(namespace, key)
        self._require_write("restore")
        self._count("put")
        if version < 1:
            raise VersionConflictError(namespace, key, version, 0)
        self._staged[(namespace, key)] = (int(version), encode_value(value))

    def set_counter(self, counter: str, value: int) -> None:
        check_names(counter)
        self._require_write("counter")
        self._count("counter")
        self._staged_counters[counter] = int(value)

    # -- commit -------------------------------------------------------- #
    def apply(self) -> None:
        """Fold the staged writes into the connector's maps."""
        for (namespace, key), staged in self._staged.items():
            if staged is _DELETED:
                bucket = self._data.get(namespace)
                if bucket is not None:
                    bucket.pop(key, None)
                    if not bucket:
                        self._data.pop(namespace, None)
            else:
                self._data.setdefault(namespace, {})[key] = staged
        self._base_counters.update(self._staged_counters)


class MemoryConnector(StorageConnector):
    """Process-local :class:`~repro.store.base.StorageConnector`."""

    backend = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()
        self._data: dict[str, dict[str, tuple[int, str]]] = {}
        self._counters: dict[str, int] = {}

    def _open_backend(self) -> None:
        pass

    def _close_backend(self) -> None:
        pass

    @contextmanager
    def _transact(self, write: bool) -> Iterator[StoreTransaction]:
        with self._lock:
            txn = _MemoryTransaction(self.backend, write, self._data, self._counters)
            yield txn
            txn.apply()
