"""Durable pluggable storage for datasets, jobs, caches and delta states.

The service and delta subsystems persist through one abstract interface —
:class:`~repro.store.base.StorageConnector`: transactional get/put/delete/
list per namespace, optimistic versioning, and named monotonic counters.
Three backends implement it:

========== ==================================================================
``sqlite`` :class:`~repro.store.sqlite.SqliteConnector` — the durable
           default: WAL mode, ``synchronous=FULL``, one connection per
           thread, busy-timeout retry.  Survives ``kill -9`` and concurrent
           writers (see ``docs/storage.md``).
``memory`` :class:`~repro.store.memory.MemoryConnector` — process-local,
           for tests and store-less services.
``json``   :class:`~repro.store.legacy.JsonSnapshotConnector` — the legacy
           ``--store state.json`` snapshot format, kept fully readable and
           writable; version-1 files migrate forward on load.
========== ==================================================================

:func:`open_store` picks the backend from the path (SQLite magic bytes, JSON
sniffing, file suffix) and handles the one-time migration of a legacy JSON
snapshot into a SQLite store.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.store.base import (
    COUNTER_JOB_IDS,
    NS_DATASET_CACHES,
    NS_DATASETS,
    NS_DELTAS,
    NS_JOBS,
    StorageConnector,
    StoreError,
    StoreTransaction,
    VersionConflictError,
    VersionedValue,
    copy_store,
)
from repro.store.legacy import JsonSnapshotConnector, is_json_snapshot
from repro.store.memory import MemoryConnector
from repro.store.sqlite import SqliteConnector, is_sqlite_file

__all__ = [
    "COUNTER_JOB_IDS",
    "NS_DATASETS",
    "NS_DATASET_CACHES",
    "NS_DELTAS",
    "NS_JOBS",
    "JsonSnapshotConnector",
    "MemoryConnector",
    "SqliteConnector",
    "StorageConnector",
    "StoreError",
    "StoreTransaction",
    "VersionConflictError",
    "VersionedValue",
    "copy_store",
    "migrate_json_to_sqlite",
    "open_store",
]


def migrate_json_to_sqlite(
    json_path: str | Path, sqlite_path: str | Path | None = None
) -> SqliteConnector:
    """Migrate a JSON snapshot into a SQLite store; returns the open store.

    Documents, versions and counters are copied exactly, so optimistic
    writers and the job-id sequence carry on seamlessly.  When
    ``sqlite_path`` is omitted the SQLite store replaces the JSON file *at
    the same path*: the database is built beside it first, the original is
    kept as ``<name>.pre-store.json``, and only then does an atomic rename
    put the database in place — a crash mid-migration never loses the
    snapshot.
    """
    source_path = Path(json_path)
    in_place = sqlite_path is None
    target_path = Path(sqlite_path) if sqlite_path is not None else source_path
    build_path = (
        target_path.with_suffix(target_path.suffix + ".migrating")
        if in_place
        else target_path
    )
    source = JsonSnapshotConnector(source_path)
    source.open()
    try:
        if build_path.exists():
            build_path.unlink()
        target = SqliteConnector(build_path)
        target.open()
        try:
            copy_store(source, target)
        finally:
            target.close()
    finally:
        source.close()
    if in_place:
        backup = source_path.with_suffix(source_path.suffix + ".pre-store.json")
        os.replace(source_path, backup)
        os.replace(build_path, target_path)
    migrated = SqliteConnector(target_path)
    migrated.open()
    return migrated


def open_store(
    path: str | Path | None = None, backend: str | None = None
) -> StorageConnector:
    """Open a storage connector for ``path``; returns it already opened.

    Backend resolution, in order:

    * ``path is None`` — a fresh in-memory store.
    * ``backend`` given — that backend, explicitly (``"sqlite"`` on an
      existing JSON snapshot migrates it in place first).
    * existing file — sniffed: SQLite magic bytes → SQLite; JSON object →
      the JSON connector for ``*.json`` paths (full backwards
      compatibility), or a transparent in-place migration to SQLite for any
      other suffix (a legacy snapshot handed to a database path).
    * new file — ``*.json`` paths get the JSON snapshot backend, everything
      else the durable SQLite default.
    """
    if path is None:
        if backend not in (None, "memory"):
            raise StoreError(f"backend {backend!r} requires a path")
        return MemoryConnector().open()
    target = Path(path)
    if backend == "memory":
        return MemoryConnector().open()
    if backend == "json":
        return JsonSnapshotConnector(target).open()
    if backend == "sqlite":
        if is_json_snapshot(target):
            return migrate_json_to_sqlite(target)
        return SqliteConnector(target).open()
    if backend is not None:
        raise StoreError(
            f"unknown store backend {backend!r}; choose sqlite, json or memory"
        )
    if target.exists():
        if is_sqlite_file(target):
            return SqliteConnector(target).open()
        if is_json_snapshot(target):
            if target.suffix == ".json":
                return JsonSnapshotConnector(target).open()
            return migrate_json_to_sqlite(target)
        raise StoreError(
            f"{target} is neither a SQLite store nor a JSON snapshot"
        )
    if target.suffix == ".json":
        return JsonSnapshotConnector(target).open()
    return SqliteConnector(target).open()
