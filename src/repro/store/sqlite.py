"""SQLite storage connector: the durable default backend.

Durability and concurrency posture:

* **WAL journal mode** — readers never block the writer and vice versa, and
  a ``kill -9`` mid-transaction leaves the main database file consistent
  (the write-ahead log replays or discards the tail on the next open).
* **``synchronous=FULL``** — a committed transaction has been fsynced; the
  fault-injection suite (``tests/test_store_faults.py``) kills the process
  at arbitrary points and asserts nothing committed is lost.
* **One connection per thread** — ``sqlite3`` connections are not safely
  shareable across threads; each thread lazily opens its own, and a forked
  child (the service's process-pool workers) never inherits a parent
  connection (connections are keyed by pid as well).
* **Busy-timeout plus bounded retry** — concurrent writers serialise on
  SQLite's single write lock; ``BEGIN IMMEDIATE`` takes it up front (no
  deadlock-prone lock upgrades) and lock contention is retried with backoff
  before surfacing as :class:`~repro.store.base.StoreError`.

The schema is three tables: ``kv(namespace, key, version, value)``,
``counters(name, value)`` and ``meta(key, value)`` carrying the format
version.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from contextlib import contextmanager, suppress
from pathlib import Path
from collections.abc import Callable, Iterator
from typing import Any, TypeVar

from repro.store.base import (
    StorageConnector,
    StoreError,
    StoreTransaction,
    VersionConflictError,
    VersionedValue,
    check_names,
    decode_value,
    encode_value,
)

#: First 16 bytes of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: Version of the kv/counters/meta schema written by this module.
STORE_FORMAT_VERSION = 1

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS kv (
        namespace TEXT NOT NULL,
        key TEXT NOT NULL,
        version INTEGER NOT NULL,
        value TEXT NOT NULL,
        PRIMARY KEY (namespace, key)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS counters (
        name TEXT PRIMARY KEY,
        value INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
)

_T = TypeVar("_T")


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


class _SqliteTransaction(StoreTransaction):
    """Executes against one thread's connection inside an explicit BEGIN."""

    def __init__(self, backend: str, write: bool, conn: sqlite3.Connection) -> None:
        super().__init__(backend, write)
        self._conn = conn

    # -- reads --------------------------------------------------------- #
    def get(self, namespace: str, key: str) -> VersionedValue | None:
        check_names(namespace, key)
        self._count("get")
        row = self._conn.execute(
            "SELECT version, value FROM kv WHERE namespace = ? AND key = ?",
            (namespace, key),
        ).fetchone()
        if row is None:
            return None
        return VersionedValue(value=decode_value(row[1]), version=int(row[0]))

    def keys(self, namespace: str) -> list[str]:
        check_names(namespace)
        self._count("list")
        rows = self._conn.execute(
            "SELECT key FROM kv WHERE namespace = ? ORDER BY key", (namespace,)
        ).fetchall()
        return [str(row[0]) for row in rows]

    def items(self, namespace: str) -> list[tuple[str, VersionedValue]]:
        check_names(namespace)
        self._count("list")
        rows = self._conn.execute(
            "SELECT key, version, value FROM kv WHERE namespace = ? ORDER BY key",
            (namespace,),
        ).fetchall()
        return [
            (str(key), VersionedValue(value=decode_value(text), version=int(version)))
            for key, version, text in rows
        ]

    def namespaces(self) -> list[str]:
        self._count("list")
        rows = self._conn.execute(
            "SELECT DISTINCT namespace FROM kv ORDER BY namespace"
        ).fetchall()
        return [str(row[0]) for row in rows]

    def peek(self, counter: str) -> int:
        check_names(counter)
        self._count("counter")
        row = self._conn.execute(
            "SELECT value FROM counters WHERE name = ?", (counter,)
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def counters(self) -> dict[str, int]:
        self._count("counter")
        rows = self._conn.execute(
            "SELECT name, value FROM counters ORDER BY name"
        ).fetchall()
        return {str(name): int(value) for name, value in rows}

    # -- writes -------------------------------------------------------- #
    def _current_version(self, namespace: str, key: str) -> int:
        row = self._conn.execute(
            "SELECT version FROM kv WHERE namespace = ? AND key = ?",
            (namespace, key),
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def put(
        self, namespace: str, key: str, value: Any, expected_version: int | None = None
    ) -> int:
        check_names(namespace, key)
        self._require_write("put")
        self._count("put")
        text = encode_value(value)
        current = self._current_version(namespace, key)
        if expected_version is not None and expected_version != current:
            raise VersionConflictError(namespace, key, expected_version, current)
        new_version = current + 1
        self._conn.execute(
            "INSERT INTO kv (namespace, key, version, value) VALUES (?, ?, ?, ?) "
            "ON CONFLICT (namespace, key) DO UPDATE SET version = ?, value = ?",
            (namespace, key, new_version, text, new_version, text),
        )
        return new_version

    def delete(
        self, namespace: str, key: str, expected_version: int | None = None
    ) -> bool:
        check_names(namespace, key)
        self._require_write("delete")
        self._count("delete")
        current = self._current_version(namespace, key)
        if current == 0:
            if expected_version not in (None, 0):
                raise VersionConflictError(namespace, key, expected_version, 0)
            return False
        if expected_version is not None and expected_version != current:
            raise VersionConflictError(namespace, key, expected_version, current)
        self._conn.execute(
            "DELETE FROM kv WHERE namespace = ? AND key = ?", (namespace, key)
        )
        return True

    def next_value(self, counter: str) -> int:
        check_names(counter)
        self._require_write("counter")
        self._count("counter")
        value = self.peek(counter) + 1
        self._conn.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT (name) DO UPDATE SET value = ?",
            (counter, value, value),
        )
        return value

    def restore(self, namespace: str, key: str, value: Any, version: int) -> None:
        check_names(namespace, key)
        self._require_write("restore")
        self._count("put")
        if version < 1:
            raise VersionConflictError(namespace, key, version, 0)
        text = encode_value(value)
        self._conn.execute(
            "INSERT INTO kv (namespace, key, version, value) VALUES (?, ?, ?, ?) "
            "ON CONFLICT (namespace, key) DO UPDATE SET version = ?, value = ?",
            (namespace, key, int(version), text, int(version), text),
        )

    def set_counter(self, counter: str, value: int) -> None:
        check_names(counter)
        self._require_write("counter")
        self._count("counter")
        self._conn.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT (name) DO UPDATE SET value = ?",
            (counter, int(value), int(value)),
        )


class SqliteConnector(StorageConnector):
    """Durable :class:`~repro.store.base.StorageConnector` over one SQLite file."""

    backend = "sqlite"

    def __init__(
        self,
        path: str | Path,
        busy_timeout: float = 5.0,
        synchronous: str = "FULL",
        max_retries: int = 8,
    ) -> None:
        super().__init__()
        if synchronous.upper() not in {"OFF", "NORMAL", "FULL", "EXTRA"}:
            raise StoreError(f"invalid synchronous mode {synchronous!r}")
        if busy_timeout < 0:
            raise StoreError("busy_timeout must be non-negative")
        if max_retries < 1:
            raise StoreError("max_retries must be at least 1")
        self._path = Path(path)
        self._busy_timeout = float(busy_timeout)
        self._synchronous = synchronous.upper()
        self._max_retries = int(max_retries)
        self._local = threading.local()
        self._conn_lock = threading.Lock()
        self._all_conns: list[sqlite3.Connection] = []

    @property
    def location(self) -> str:
        """Path of the database file."""
        return str(self._path)

    # -- lifecycle ----------------------------------------------------- #
    def _open_backend(self) -> None:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        conn = self._connection()
        # Racing openers contend on the schema lock; go through the same
        # bounded backoff as transactions.
        self._retry(lambda: self._create_schema(conn))

    def _create_schema(self, conn: sqlite3.Connection) -> None:
        for statement in _SCHEMA:
            conn.execute(statement)
        conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('store_version', ?)",
            (str(STORE_FORMAT_VERSION),),
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'store_version'"
        ).fetchone()
        found = int(row[0]) if row is not None else 0
        if found != STORE_FORMAT_VERSION:
            raise StoreError(
                f"store format version {found} in {self._path} is not supported "
                f"(this build writes version {STORE_FORMAT_VERSION})"
            )

    def _close_backend(self) -> None:
        with self._conn_lock:
            conns, self._all_conns = self._all_conns, []
        for conn in conns:
            with suppress(sqlite3.Error):
                conn.close()
        self._local = threading.local()

    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        pid = getattr(self._local, "pid", None)
        if conn is not None and pid == os.getpid():
            return conn
        # A forked child sees the parent's thread-local slot: never reuse the
        # inherited connection object (shared file offsets corrupt the WAL).
        conn = sqlite3.connect(
            str(self._path),
            timeout=self._busy_timeout,
            isolation_level=None,  # explicit BEGIN/COMMIT below
            check_same_thread=False,  # each conn still serves only its thread
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA synchronous={self._synchronous}")
        conn.execute(f"PRAGMA busy_timeout={int(self._busy_timeout * 1000)}")
        self._local.conn = conn
        self._local.pid = os.getpid()
        with self._conn_lock:
            self._all_conns.append(conn)
        return conn

    # -- transactions --------------------------------------------------- #
    def _retry(self, operation: Callable[[], _T]) -> _T:
        delay = 0.005
        for attempt in range(self._max_retries):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc) or attempt == self._max_retries - 1:
                    raise StoreError(f"sqlite store {self._path}: {exc}") from exc
                time.sleep(delay)
                delay = min(delay * 2, 0.25)
        raise StoreError(f"sqlite store {self._path} stayed locked")  # pragma: no cover

    @contextmanager
    def _transact(self, write: bool) -> Iterator[StoreTransaction]:
        conn = self._connection()
        begin = "BEGIN IMMEDIATE" if write else "BEGIN"
        self._retry(lambda: conn.execute(begin))
        try:
            yield _SqliteTransaction(self.backend, write, conn)
        except BaseException:
            with suppress(sqlite3.Error):
                conn.execute("ROLLBACK")
            raise
        try:
            self._retry(lambda: conn.execute("COMMIT"))
        except StoreError:
            with suppress(sqlite3.Error):
                conn.execute("ROLLBACK")
            raise


def is_sqlite_file(path: str | Path) -> bool:
    """Whether ``path`` exists and starts with the SQLite file magic."""
    target = Path(path)
    if not target.is_file():
        return False
    try:
        with target.open("rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False
