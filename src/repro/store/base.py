"""The storage connector contract: transactional, namespaced, versioned.

A :class:`StorageConnector` persists small JSON documents under
``(namespace, key)`` pairs, each carrying an integer **version** that starts
at 1 on first write and increments on every update.  All reads and writes
happen inside a :class:`StoreTransaction`; a transaction either commits
atomically or leaves the store untouched.  Writers pass
``expected_version`` to detect races: ``0`` means "the key must not exist
yet" (create-only), any other integer means "the key must still be at that
version" (update-only), and ``None`` writes unconditionally.  A mismatch
raises :class:`VersionConflictError` — a *typed* error the service layers
translate, never silent corruption.

Values are encoded to canonical JSON at the transaction boundary, so every
connector has identical value semantics (tuples become lists, keys become
strings) and a payload that round-trips through one connector round-trips
through all of them.

Each connector also keeps named monotonic **counters**
(:meth:`StoreTransaction.next_value`) — the durable sequence behind
``next_job_id`` — which survive restarts and are race-free across processes
on the SQLite backend.
"""

from __future__ import annotations

import abc
import json
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterator
from typing import Any

from repro.obs.metrics import STORE_OPS, STORE_TXNS
from repro.obs.trace import span


#: Well-known namespaces of the service layers (shared by the legacy
#: snapshot migration, the registries and the delta store).
NS_DATASETS = "datasets"
NS_DATASET_CACHES = "dataset_caches"
NS_JOBS = "jobs"
NS_DELTAS = "deltas"
NS_RESPONSE_CACHE = "response_cache"

#: The durable sequence behind ``JobStore.new_job_id``.
COUNTER_JOB_IDS = "job_ids"


class StoreError(RuntimeError):
    """Raised for storage-level failures (closed store, bad payload, I/O)."""


class VersionConflictError(StoreError):
    """An optimistic-concurrency check failed: someone else wrote first.

    ``expected == 0`` means the writer required the key to be absent (a
    create-only put that lost a race); any other expectation means the key
    moved past the version the writer had read.
    """

    def __init__(self, namespace: str, key: str, expected: int, found: int) -> None:
        self.namespace = namespace
        self.key = key
        self.expected = expected
        self.found = found
        if expected == 0:
            detail = "the key already exists"
        else:
            detail = f"expected version {expected}, found {found}"
        super().__init__(f"version conflict on {namespace}/{key}: {detail}")


@dataclass(frozen=True)
class VersionedValue:
    """One stored document and the version it was read at."""

    value: Any
    version: int


def encode_value(value: Any) -> str:
    """Encode a document as canonical JSON text (what every connector stores)."""
    try:
        return json.dumps(value, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise StoreError(f"value is not JSON-serialisable: {exc}") from exc


def decode_value(text: str) -> Any:
    """Decode stored JSON text back into plain Python objects."""
    return json.loads(text)


def check_names(namespace: str, key: str | None = None) -> None:
    """Reject empty or non-string namespaces/keys before they hit a backend."""
    if not isinstance(namespace, str) or not namespace:
        raise StoreError(f"namespace must be a non-empty string, got {namespace!r}")
    if key is not None and (not isinstance(key, str) or not key):
        raise StoreError(f"key must be a non-empty string, got {key!r}")


class StoreTransaction(abc.ABC):
    """One atomic unit of reads and writes against a connector.

    Mutating calls (:meth:`put`, :meth:`delete`, :meth:`next_value`,
    :meth:`restore`, :meth:`set_counter`) require the transaction to have
    been opened with ``write=True``; read-only transactions raise
    :class:`StoreError` instead of silently upgrading (an upgrade mid-flight
    is how SQLite deadlocks two deferred writers).
    """

    def __init__(self, backend: str, write: bool) -> None:
        self._backend = backend
        self.write = write

    def _count(self, op: str) -> None:
        STORE_OPS.inc(backend=self._backend, op=op)

    def _require_write(self, op: str) -> None:
        if not self.write:
            raise StoreError(
                f"{op}() requires a write transaction; open with transaction(write=True)"
            )

    # -- reads --------------------------------------------------------- #
    @abc.abstractmethod
    def get(self, namespace: str, key: str) -> VersionedValue | None:
        """The value and version stored under ``(namespace, key)``, or ``None``."""

    @abc.abstractmethod
    def keys(self, namespace: str) -> list[str]:
        """All keys in ``namespace``, sorted."""

    @abc.abstractmethod
    def items(self, namespace: str) -> list[tuple[str, VersionedValue]]:
        """All ``(key, versioned value)`` pairs in ``namespace``, sorted by key."""

    @abc.abstractmethod
    def namespaces(self) -> list[str]:
        """Every namespace holding at least one key, sorted."""

    @abc.abstractmethod
    def peek(self, counter: str) -> int:
        """Current value of a counter (0 when never advanced)."""

    @abc.abstractmethod
    def counters(self) -> dict[str, int]:
        """Every named counter and its current value."""

    # -- writes -------------------------------------------------------- #
    @abc.abstractmethod
    def put(
        self, namespace: str, key: str, value: Any, expected_version: int | None = None
    ) -> int:
        """Write a document; returns the new version.

        ``expected_version=0`` creates only (raises
        :class:`VersionConflictError` if the key exists);
        ``expected_version=N`` updates only if the key is still at ``N``;
        ``None`` writes unconditionally.
        """

    @abc.abstractmethod
    def delete(
        self, namespace: str, key: str, expected_version: int | None = None
    ) -> bool:
        """Delete a document; returns whether it existed.

        A non-``None`` ``expected_version`` must match the stored version.
        """

    @abc.abstractmethod
    def next_value(self, counter: str) -> int:
        """Advance a named monotonic counter and return its new value."""

    @abc.abstractmethod
    def restore(self, namespace: str, key: str, value: Any, version: int) -> None:
        """Write a document at an exact version (migration/copy only).

        Unlike :meth:`put`, this does not bump the version — it reproduces
        the source store's version so optimistic writers carry on seamlessly
        after a migration.
        """

    @abc.abstractmethod
    def set_counter(self, counter: str, value: int) -> None:
        """Set a counter to an absolute value (migration/copy only)."""


class StorageConnector(abc.ABC):
    """Abstract durable key/value store with namespaces and versions.

    Concrete backends: :class:`~repro.store.sqlite.SqliteConnector` (the
    durable default), :class:`~repro.store.memory.MemoryConnector` (tests,
    store-less services) and :class:`~repro.store.legacy.JsonSnapshotConnector`
    (the pre-store ``--store state.json`` format, kept writable).
    """

    #: Short backend name used as the metrics label.
    backend: str = "abstract"

    def __init__(self) -> None:
        self._closed = True

    # -- lifecycle ----------------------------------------------------- #
    @property
    def closed(self) -> bool:
        """Whether the connector is not currently open."""
        return self._closed

    def open(self) -> "StorageConnector":
        """Open the backend (idempotent); returns ``self`` for chaining."""
        if self._closed:
            self._open_backend()
            self._closed = False
        return self

    def close(self) -> None:
        """Flush and release the backend (idempotent)."""
        if not self._closed:
            self._close_backend()
            self._closed = True

    def __enter__(self) -> "StorageConnector":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @abc.abstractmethod
    def _open_backend(self) -> None:
        """Backend-specific open."""

    @abc.abstractmethod
    def _close_backend(self) -> None:
        """Backend-specific close."""

    @abc.abstractmethod
    def _transact(self, write: bool) -> Any:
        """A context manager yielding a :class:`StoreTransaction`."""

    @property
    def location(self) -> str | None:
        """Where the data lives (a path), or ``None`` for in-memory backends."""
        return None

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"{type(self).__name__} is not open")

    # -- transactions -------------------------------------------------- #
    @contextmanager
    def transaction(self, write: bool = False) -> Iterator[StoreTransaction]:
        """Open one atomic transaction (commit on exit, roll back on error)."""
        self._check_open()
        with span("store_txn", kind="store", backend=self.backend, write=write):
            with self._transact(write) as txn:
                yield txn
        STORE_TXNS.inc(backend=self.backend, write="true" if write else "false")

    # -- autocommit conveniences --------------------------------------- #
    def get(self, namespace: str, key: str) -> VersionedValue | None:
        """One-shot read of a single document."""
        with self.transaction() as txn:
            return txn.get(namespace, key)

    def put(
        self, namespace: str, key: str, value: Any, expected_version: int | None = None
    ) -> int:
        """One-shot versioned write of a single document."""
        with self.transaction(write=True) as txn:
            return txn.put(namespace, key, value, expected_version=expected_version)

    def delete(
        self, namespace: str, key: str, expected_version: int | None = None
    ) -> bool:
        """One-shot delete of a single document."""
        with self.transaction(write=True) as txn:
            return txn.delete(namespace, key, expected_version=expected_version)

    def keys(self, namespace: str) -> list[str]:
        """One-shot sorted key listing of a namespace."""
        with self.transaction() as txn:
            return txn.keys(namespace)

    def items(self, namespace: str) -> list[tuple[str, VersionedValue]]:
        """One-shot sorted item listing of a namespace."""
        with self.transaction() as txn:
            return txn.items(namespace)

    def namespaces(self) -> list[str]:
        """One-shot listing of the populated namespaces."""
        with self.transaction() as txn:
            return txn.namespaces()

    def next_value(self, counter: str) -> int:
        """One-shot counter advance."""
        with self.transaction(write=True) as txn:
            return txn.next_value(counter)

    def peek(self, counter: str) -> int:
        """One-shot counter read."""
        with self.transaction() as txn:
            return txn.peek(counter)


def copy_store(source: StorageConnector, target: StorageConnector) -> None:
    """Copy every document, version and counter from one open store to another.

    Versions are reproduced exactly (via :meth:`StoreTransaction.restore`),
    so optimistic writers that read before the copy still conflict correctly
    against the copy — this is what backs the JSON→SQLite migration.
    """
    with source.transaction() as src:
        payload = [
            (namespace, src.items(namespace)) for namespace in src.namespaces()
        ]
        counters = src.counters()
    with target.transaction(write=True) as dst:
        for namespace, entries in payload:
            for key, stored in entries:
                dst.restore(namespace, key, stored.value, stored.version)
        for name, value in counters.items():
            dst.set_counter(name, value)
