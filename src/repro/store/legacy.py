"""Legacy JSON-snapshot adapter: reads old ``--store`` files, migrates forward.

Before :mod:`repro.store` existed, the service persisted everything as one
JSON document (``{"version": 1, "datasets": ..., "jobs": ...,
"next_job_id": ...}``) written by ``save_snapshot``.  This module keeps
those files working:

* :class:`JsonSnapshotConnector` is a full
  :class:`~repro.store.base.StorageConnector` whose backing file is a JSON
  snapshot.  Opening a **legacy** (version-1) file migrates its payload into
  the namespaced layout in memory; every committed write transaction
  rewrites the file atomically (tmp file + ``os.replace``) in the new
  namespaced format, so the first mutation migrates the file forward on
  disk too.
* :func:`save_snapshot` / :func:`load_snapshot` are the legacy module-level
  entry points, kept for backwards compatibility.  Nothing outside this
  module may call them — the ``repro-lint`` contract rule **RPR008**
  enforces that every other caller goes through a connector.

Durability here is inherited from the atomic-rename pattern only: a crash
can lose at most the *latest* uncommitted rewrite, never corrupt the file.
For real transactional durability use the SQLite backend
(:func:`repro.store.open_store` migrates a JSON file to it on request).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.store.base import (
    COUNTER_JOB_IDS,
    NS_DATASETS,
    NS_JOBS,
    StorageConnector,
    StoreError,
    StoreTransaction,
)
from repro.store.memory import MemoryConnector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.service.registry import DatasetRegistry, JobStore

#: Format version of the namespaced snapshot document this module writes.
SNAPSHOT_VERSION = 2


def parse_snapshot(
    payload: dict[str, Any],
) -> tuple[dict[str, dict[str, tuple[int, Any]]], dict[str, int]]:
    """Normalise a snapshot document into ``(namespaces, counters)``.

    Accepts both the namespaced version-2 layout and the legacy version-1
    layout (datasets/jobs/next_job_id at the top level), migrating the
    latter forward: datasets become the ``datasets`` namespace keyed by
    name, job records the ``jobs`` namespace keyed by job id, and
    ``next_job_id`` seeds the job-id counter.
    """
    if not isinstance(payload, dict):
        raise StoreError("snapshot must be a JSON object")
    if payload.get("store_version") == SNAPSHOT_VERSION:
        namespaces: dict[str, dict[str, tuple[int, Any]]] = {}
        for namespace, entries in payload.get("namespaces", {}).items():
            bucket: dict[str, tuple[int, Any]] = {}
            for key, stored in entries.items():
                bucket[str(key)] = (int(stored["version"]), stored["value"])
            namespaces[str(namespace)] = bucket
        counters = {
            str(name): int(value)
            for name, value in payload.get("counters", {}).items()
        }
        return namespaces, counters
    version = payload.get("version", payload.get("store_version"))
    if version != 1:
        raise StoreError(f"unsupported snapshot version {version!r}")
    datasets = {
        str(name): (1, table_data)
        for name, table_data in payload.get("datasets", {}).items()
    }
    jobs: dict[str, tuple[int, Any]] = {}
    for job_data in payload.get("jobs", []):
        jobs[str(job_data["job_id"])] = (1, job_data)
    counters = {}
    next_job_id = payload.get("next_job_id")
    if next_job_id is not None:
        counters[COUNTER_JOB_IDS] = max(0, int(next_job_id) - 1)
    return (
        {name: bucket for name, bucket in ((NS_DATASETS, datasets), (NS_JOBS, jobs)) if bucket},
        counters,
    )


class JsonSnapshotConnector(StorageConnector):
    """A :class:`StorageConnector` whose backing file is a JSON snapshot.

    State lives in an in-memory connector; every committed write
    transaction rewrites the snapshot atomically.  Legacy version-1 files
    load transparently and are rewritten in the namespaced layout on the
    first mutation.
    """

    backend = "json"

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self._path = Path(path)
        self._memory = MemoryConnector()
        # The inner transactions label metrics with this adapter's backend.
        self._memory.backend = self.backend

    @property
    def location(self) -> str:
        """Path of the snapshot file."""
        return str(self._path)

    def _open_backend(self) -> None:
        self._memory.open()
        if not self._path.exists():
            return
        try:
            payload = json.loads(self._path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"cannot read snapshot {self._path}: {exc}") from exc
        namespaces, counters = parse_snapshot(payload)
        with self._memory.transaction(write=True) as txn:
            for namespace, bucket in namespaces.items():
                for key, (version, value) in bucket.items():
                    txn.restore(namespace, key, value, version)
            for name, value in counters.items():
                txn.set_counter(name, value)

    def _close_backend(self) -> None:
        self._memory.close()

    @contextmanager
    def _transact(self, write: bool) -> Iterator[StoreTransaction]:
        # Hold the memory lock across commit *and* flush so two writers
        # cannot interleave a stale rewrite between each other.
        with self._memory._lock:
            with self._memory._transact(write) as txn:
                yield txn
            if write:
                self._flush()

    def _flush(self) -> None:
        payload: dict[str, Any] = {"store_version": SNAPSHOT_VERSION, "namespaces": {}}
        data = self._memory._data
        for namespace in sorted(data):
            payload["namespaces"][namespace] = {
                key: {"version": version, "value": json.loads(text)}
                for key, (version, text) in sorted(data[namespace].items())
            }
        if self._memory._counters:
            payload["counters"] = dict(sorted(self._memory._counters.items()))
        tmp = self._path.with_suffix(self._path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self._path)

    def flush(self) -> Path:
        """Force a rewrite of the snapshot file; returns its path."""
        self._check_open()
        with self._memory._lock:
            self._flush()
        return self._path


def is_json_snapshot(path: str | Path) -> bool:
    """Whether ``path`` exists and plausibly holds a JSON snapshot."""
    target = Path(path)
    if not target.is_file():
        return False
    try:
        with target.open("rb") as handle:
            head = handle.read(64).lstrip()
    except OSError:
        return False
    return head.startswith(b"{")


# --------------------------------------------------------------------- #
# Legacy module-level snapshot API (compat only; see RPR008)
# --------------------------------------------------------------------- #

def save_snapshot(
    path: str | Path, datasets: "DatasetRegistry", jobs: "JobStore"
) -> None:
    """Write a snapshot of the registries (legacy entry point).

    Kept for backwards compatibility with the pre-connector API; writes the
    namespaced format.  New code opens a connector instead
    (:func:`repro.store.open_store`) — RPR008 flags any caller outside this
    module.
    """
    from repro.service.models import table_to_json

    connector = JsonSnapshotConnector(path)
    connector.open()
    try:
        with connector.transaction(write=True) as txn:
            for entry in datasets.entries():
                txn.put(NS_DATASETS, entry.name, table_to_json(entry.table))
            for record in jobs.records():
                txn.put(NS_JOBS, record.job_id, record.to_json())
            txn.set_counter(COUNTER_JOB_IDS, jobs.last_job_number)
    finally:
        connector.close()


def load_snapshot(path: str | Path) -> tuple["DatasetRegistry", "JobStore"]:
    """Rebuild detached in-memory registries from a snapshot (legacy entry point).

    The returned registries are backed by a private
    :class:`~repro.store.memory.MemoryConnector` — mutations do **not**
    rewrite the file, exactly as with the pre-connector API.
    """
    from repro.service.registry import DatasetRegistry, JobStore
    from repro.store.base import copy_store

    source = JsonSnapshotConnector(path)
    source.open()
    detached = MemoryConnector().open()
    try:
        copy_store(source, detached)
    finally:
        source.close()
    return DatasetRegistry(store=detached), JobStore(store=detached)
