"""Exact moments of the observed count and the MLE.

Section 4.2 of the paper bounds the tail probabilities of the MLE ``F'`` by
converting bounds on the observed count ``O*``.  The exact first and second
moments of those quantities are useful both for tests (verifying the law of
large numbers behaviour the paper leverages) and for the variance-based
Chebyshev alternative to the Chernoff test.

``O*`` is a sum of independent Bernoulli indicators: a record originally
holding the target value contributes with probability ``p + (1-p)/m``, any
other record with probability ``(1-p)/m`` (Lemma 2(i) and the discussion after
Theorem 3).
"""

from __future__ import annotations

from repro.perturbation.matrix import PerturbationMatrix


def expected_observed_count(
    subset_size: int,
    frequency: float,
    retention_probability: float,
    domain_size: int,
) -> float:
    """``E[O*] = |S| (f p + (1 - p)/m)`` — Lemma 2(i)."""
    _validate(subset_size, frequency)
    matrix = PerturbationMatrix(retention_probability, domain_size)
    return subset_size * (frequency * matrix.retention_probability + matrix.off_diagonal)


def observed_count_variance(
    subset_size: int,
    frequency: float,
    retention_probability: float,
    domain_size: int,
) -> float:
    """Exact variance of ``O*`` as a sum of independent Bernoulli trials.

    ``Var[O*] = |S| f q1 (1 - q1) + |S| (1 - f) q0 (1 - q0)`` where
    ``q1 = p + (1-p)/m`` (records originally holding the value) and
    ``q0 = (1-p)/m`` (all other records).
    """
    _validate(subset_size, frequency)
    matrix = PerturbationMatrix(retention_probability, domain_size)
    q1 = matrix.diagonal
    q0 = matrix.off_diagonal
    holders = subset_size * frequency
    others = subset_size * (1.0 - frequency)
    return holders * q1 * (1.0 - q1) + others * q0 * (1.0 - q0)


def mle_variance(
    subset_size: int,
    frequency: float,
    retention_probability: float,
    domain_size: int,
) -> float:
    """Exact variance of the MLE ``F' = (O*/|S| - (1-p)/m) / p``.

    Since ``F'`` is an affine function of ``O*``,
    ``Var[F'] = Var[O*] / (|S| p)^2``.  It shrinks like ``1/|S|``, which is
    precisely the law-of-large-numbers gap the paper exploits: personal groups
    are small (large variance), aggregate groups are large (small variance).
    """
    _validate(subset_size, frequency)
    variance = observed_count_variance(subset_size, frequency, retention_probability, domain_size)
    return variance / (subset_size * retention_probability) ** 2


def _validate(subset_size: int, frequency: float) -> None:
    if subset_size <= 0:
        raise ValueError("subset_size must be positive")
    if not 0.0 <= frequency <= 1.0:
        raise ValueError("frequency must lie in [0, 1]")
