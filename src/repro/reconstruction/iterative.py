"""Iterative Bayesian (EM) reconstruction.

Agrawal & Srikant's iterative Bayesian update is the classic alternative to
the matrix-inversion MLE for randomised-response data.  The paper relies only
on the MLE, but the EM estimator is the natural robustness ablation: it always
produces a feasible distribution and converges to the constrained MLE.  We use
it in the ablation benchmarks and expose it as part of the public
reconstruction API.

Update rule (for uniform perturbation with matrix **P**):

    f_i^(t+1) = sum_j  (O*_j / |S|) * P[j, i] * f_i^(t) / (sum_k P[j, k] * f_k^(t))

iterated from the uniform distribution until the L1 change falls below a
tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.perturbation.matrix import PerturbationMatrix


def iterative_bayes_frequencies(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
    max_iterations: int = 1000,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """EM reconstruction of the original SA frequencies from perturbed counts.

    Parameters
    ----------
    observed_counts:
        Counts of each SA value in the perturbed subset, length ``m``.
    retention_probability:
        ``p`` used during perturbation.
    domain_size:
        ``m``; defaults to ``len(observed_counts)``.
    max_iterations, tolerance:
        Convergence controls; iteration stops when the L1 change in the
        estimate drops below ``tolerance``.
    """
    counts = np.asarray(observed_counts, dtype=float)
    m = int(domain_size) if domain_size is not None else counts.shape[0]
    if counts.shape != (m,):
        raise ValueError(f"observed_counts must have shape ({m},)")
    if (counts < 0).any():
        raise ValueError("observed counts must be non-negative")
    total = counts.sum()
    if total <= 0:
        raise ValueError("the perturbed subset must contain at least one record")
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")

    matrix = PerturbationMatrix(retention_probability, m).as_array()
    observed_frequencies = counts / total
    estimate = np.full(m, 1.0 / m)
    for _ in range(max_iterations):
        # predicted[j] = sum_k P[j, k] * estimate[k]
        predicted = matrix @ estimate
        # Avoid division by zero for published values with zero predicted mass.
        safe_predicted = np.where(predicted > 0, predicted, 1.0)
        posterior = matrix * estimate[None, :] / safe_predicted[:, None]
        updated = observed_frequencies @ posterior
        updated = np.clip(updated, 0.0, None)
        updated_sum = updated.sum()
        if updated_sum > 0:
            updated /= updated_sum
        if np.abs(updated - estimate).sum() < tolerance:
            estimate = updated
            break
        estimate = updated
    return estimate
