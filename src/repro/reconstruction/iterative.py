"""Iterative Bayesian (EM) reconstruction.

Agrawal & Srikant's iterative Bayesian update is the classic alternative to
the matrix-inversion MLE for randomised-response data.  The paper relies only
on the MLE, but the EM estimator is the natural robustness ablation: it always
produces a feasible distribution and converges to the constrained MLE.  We use
it in the ablation benchmarks and expose it as part of the public
reconstruction API.

Update rule (for uniform perturbation with matrix **P**):

    f_i^(t+1) = sum_j  (O*_j / |S|) * P[j, i] * f_i^(t) / (sum_k P[j, k] * f_k^(t))

iterated from the uniform distribution until the L1 change falls below a
tolerance.

Like the closed-form MLE, this function accepts *batched* input: a stack of
observed-count vectors of shape ``(..., m)`` runs the EM on every subset
simultaneously (one matrix product per iteration for the whole batch instead
of one Python-level loop per subset).  Each row is iterated with the same
update rule and per-row convergence check — a row stops updating once its own
L1 change falls below the tolerance, exactly as the one-vector call would.
The one-vector path keeps the original operation order, so existing callers
see bit-identical results.
"""

from __future__ import annotations

import numpy as np

from repro.perturbation.matrix import PerturbationMatrix


def _validate_counts(observed_counts: np.ndarray, domain_size: int | None) -> tuple[np.ndarray, int]:
    counts = np.asarray(observed_counts, dtype=float)
    m = int(domain_size) if domain_size is not None else counts.shape[-1]
    if counts.ndim == 0 or counts.shape[-1] != m:
        raise ValueError(f"observed_counts must have shape (..., {m})")
    if (counts < 0).any():
        raise ValueError("observed counts must be non-negative")
    if (counts.sum(axis=-1) <= 0).any():
        raise ValueError("the perturbed subset must contain at least one record")
    return counts, m


def _iterate_single(
    observed_frequencies: np.ndarray,
    matrix: np.ndarray,
    m: int,
    max_iterations: int,
    tolerance: float,
) -> np.ndarray:
    """The original one-vector EM loop (kept verbatim for bit-stability)."""
    estimate = np.full(m, 1.0 / m)
    for _ in range(max_iterations):
        # predicted[j] = sum_k P[j, k] * estimate[k]
        predicted = matrix @ estimate
        # Avoid division by zero for published values with zero predicted mass.
        safe_predicted = np.where(predicted > 0, predicted, 1.0)
        posterior = matrix * estimate[None, :] / safe_predicted[:, None]
        updated = observed_frequencies @ posterior
        updated = np.clip(updated, 0.0, None)
        updated_sum = updated.sum()
        if updated_sum > 0:
            updated /= updated_sum
        if np.abs(updated - estimate).sum() < tolerance:
            estimate = updated
            break
        estimate = updated
    return estimate


def _iterate_batch(
    observed_frequencies: np.ndarray,
    matrix: np.ndarray,
    m: int,
    max_iterations: int,
    tolerance: float,
) -> np.ndarray:
    """Vectorised EM over a ``(batch, m)`` stack with per-row convergence.

    Rows freeze individually as they converge, so every row runs the same
    number of updates it would run alone (up to floating-point reassociation
    in the batched matrix products, the results agree with the one-vector
    path to machine precision).
    """
    batch = observed_frequencies.shape[0]
    estimates = np.full((batch, m), 1.0 / m)
    active = np.arange(batch)
    for _ in range(max_iterations):
        est = estimates[active]
        obs = observed_frequencies[active]
        predicted = est @ matrix.T
        safe_predicted = np.where(predicted > 0, predicted, 1.0)
        # updated[b, i] = est[b, i] * sum_j obs[b, j] * P[j, i] / predicted[b, j]
        updated = est * ((obs / safe_predicted) @ matrix)
        updated = np.clip(updated, 0.0, None)
        sums = updated.sum(axis=1, keepdims=True)
        np.divide(updated, sums, out=updated, where=sums > 0)
        converged = np.abs(updated - est).sum(axis=1) < tolerance
        estimates[active] = updated
        active = active[~converged]
        if active.size == 0:
            break
    return estimates


def iterative_bayes_frequencies(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
    max_iterations: int = 1000,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """EM reconstruction of the original SA frequencies from perturbed counts.

    Parameters
    ----------
    observed_counts:
        Counts of each SA value in the perturbed subset, length ``m`` — or a
        stack of such vectors, shape ``(..., m)``, reconstructed together in
        one vectorised batch.
    retention_probability:
        ``p`` used during perturbation.
    domain_size:
        ``m``; defaults to ``observed_counts.shape[-1]``.
    max_iterations, tolerance:
        Convergence controls; iteration stops when the L1 change in the
        estimate drops below ``tolerance``.
    """
    counts, m = _validate_counts(observed_counts, domain_size)
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")

    matrix = PerturbationMatrix(retention_probability, m).as_array()
    observed_frequencies = counts / counts.sum(axis=-1, keepdims=True)
    if counts.ndim == 1:
        return _iterate_single(observed_frequencies, matrix, m, max_iterations, tolerance)
    flat = observed_frequencies.reshape(-1, m)
    estimates = _iterate_batch(flat, matrix, m, max_iterations, tolerance)
    return estimates.reshape(counts.shape)
