"""Maximum-likelihood frequency reconstruction (Theorem 1 and Lemma 2).

The perturbation operation implies ``P . f = E[O*] / |S|``.  Approximating the
expectation by the observed counts gives the MLE

    F' = P^-1 . (O* / |S|)                       (matrix form, Theorem 1)
    F'_i = (O*_i / |S| - (1 - p)/m) / p          (closed form, Lemma 2(ii))

Both forms are implemented and are numerically identical; the closed form is
used everywhere else in the library because it avoids building the matrix.
The MLE is unbiased (Lemma 2(iii)) but may fall outside ``[0, 1]`` for small
samples; :func:`mle_frequencies_clipped` projects it back onto the simplex for
consumers that need a proper distribution (e.g. the naive Bayes learner).
"""

from __future__ import annotations

import numpy as np

from repro.perturbation.matrix import PerturbationMatrix


def _validate(observed_counts: np.ndarray, domain_size: int) -> np.ndarray:
    counts = np.asarray(observed_counts, dtype=float)
    if counts.shape != (domain_size,):
        raise ValueError(f"observed_counts must have shape ({domain_size},)")
    if (counts < 0).any():
        raise ValueError("observed counts must be non-negative")
    return counts


def mle_frequency(
    observed_count: float,
    subset_size: int,
    retention_probability: float,
    domain_size: int,
) -> float:
    """The closed-form MLE of Lemma 2(ii) for a single SA value.

    ``F' = (O*/|S| - (1 - p)/m) / p``.
    """
    if subset_size <= 0:
        raise ValueError("subset_size must be positive")
    matrix = PerturbationMatrix(retention_probability, domain_size)
    observed_frequency = observed_count / subset_size
    return (observed_frequency - matrix.off_diagonal) / matrix.retention_probability


def mle_frequencies(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
) -> np.ndarray:
    """Closed-form MLE for the full SA frequency vector of a perturbed subset.

    Parameters
    ----------
    observed_counts:
        The counts ``O*_i`` of each SA value in the perturbed subset ``S*``,
        length ``m``.  Their sum is ``|S|``.
    retention_probability:
        ``p`` used during perturbation.
    domain_size:
        ``m``; defaults to ``len(observed_counts)``.
    """
    counts = np.asarray(observed_counts, dtype=float)
    m = int(domain_size) if domain_size is not None else counts.shape[0]
    counts = _validate(counts, m)
    total = counts.sum()
    if total <= 0:
        raise ValueError("the perturbed subset must contain at least one record")
    matrix = PerturbationMatrix(retention_probability, m)
    return (counts / total - matrix.off_diagonal) / matrix.retention_probability


def mle_frequencies_matrix(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
) -> np.ndarray:
    """Matrix-form MLE ``P^-1 . O*/|S|`` (Theorem 1); equals :func:`mle_frequencies`."""
    counts = np.asarray(observed_counts, dtype=float)
    m = int(domain_size) if domain_size is not None else counts.shape[0]
    counts = _validate(counts, m)
    total = counts.sum()
    if total <= 0:
        raise ValueError("the perturbed subset must contain at least one record")
    matrix = PerturbationMatrix(retention_probability, m)
    return matrix.inverse() @ (counts / total)


def mle_frequencies_clipped(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
) -> np.ndarray:
    """MLE projected onto the probability simplex (non-negative, sums to one).

    The raw MLE already sums to one; clipping negative entries to zero and
    renormalising gives the standard feasible estimator used when the result
    must be a valid distribution.
    """
    raw = mle_frequencies(observed_counts, retention_probability, domain_size)
    clipped = np.clip(raw, 0.0, None)
    total = clipped.sum()
    if total == 0:
        return np.full_like(clipped, 1.0 / clipped.size)
    return clipped / total


def reconstruct_counts(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
    clip: bool = False,
) -> np.ndarray:
    """Reconstructed absolute counts ``|S| * F'`` for a perturbed subset.

    This is the estimator behind the paper's query answering (Section 6.1):
    ``est = |S*| * F'``.  With ``clip=True`` the clipped MLE is used.
    """
    counts = np.asarray(observed_counts, dtype=float)
    total = counts.sum()
    estimator = mle_frequencies_clipped if clip else mle_frequencies
    return total * estimator(counts, retention_probability, domain_size)
