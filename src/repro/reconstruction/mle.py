"""Maximum-likelihood frequency reconstruction (Theorem 1 and Lemma 2).

The perturbation operation implies ``P . f = E[O*] / |S|``.  Approximating the
expectation by the observed counts gives the MLE

    F' = P^-1 . (O* / |S|)                       (matrix form, Theorem 1)
    F'_i = (O*_i / |S| - (1 - p)/m) / p          (closed form, Lemma 2(ii))

Both forms are implemented and are numerically identical; the closed form is
used everywhere else in the library because it avoids building the matrix.
The MLE is unbiased (Lemma 2(iii)) but may fall outside ``[0, 1]`` for small
samples; :func:`mle_frequencies_clipped` projects it back onto the simplex for
consumers that need a proper distribution (e.g. the naive Bayes learner).

All closed-form estimators accept *batched* inputs: an array of shape
``(..., m)`` is treated as a stack of observed-count vectors and reconstructed
in one vectorised pass.  Because the closed form is purely elementwise, every
row of a batched call is bit-for-bit identical to the corresponding
one-vector call — batching callers that used to loop over groups is a pure
speedup, never a numerical change.
"""

from __future__ import annotations

import numpy as np

from repro.perturbation.matrix import PerturbationMatrix


def _validate(observed_counts: np.ndarray, domain_size: int) -> np.ndarray:
    counts = np.asarray(observed_counts, dtype=float)
    if counts.ndim == 0 or counts.shape[-1] != domain_size:
        raise ValueError(f"observed_counts must have shape (..., {domain_size})")
    if (counts < 0).any():
        raise ValueError("observed counts must be non-negative")
    return counts


def _validated_totals(counts: np.ndarray) -> np.ndarray:
    """Per-vector totals ``|S|`` with the positivity check, keeping dims."""
    totals = counts.sum(axis=-1, keepdims=True)
    if (totals <= 0).any():
        raise ValueError("the perturbed subset must contain at least one record")
    return totals


def mle_frequency(
    observed_count: float,
    subset_size: int,
    retention_probability: float,
    domain_size: int,
) -> float:
    """The closed-form MLE of Lemma 2(ii) for a single SA value.

    ``F' = (O*/|S| - (1 - p)/m) / p``.
    """
    if subset_size <= 0:
        raise ValueError("subset_size must be positive")
    matrix = PerturbationMatrix(retention_probability, domain_size)
    observed_frequency = observed_count / subset_size
    return (observed_frequency - matrix.off_diagonal) / matrix.retention_probability


def mle_frequencies(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
) -> np.ndarray:
    """Closed-form MLE for the SA frequency vector(s) of perturbed subset(s).

    Parameters
    ----------
    observed_counts:
        The counts ``O*_i`` of each SA value in the perturbed subset ``S*``,
        shape ``(m,)`` — or a stack of such vectors, shape ``(..., m)``, each
        reconstructed independently.  Each vector's sum is its ``|S|``.
    retention_probability:
        ``p`` used during perturbation.
    domain_size:
        ``m``; defaults to ``observed_counts.shape[-1]``.
    """
    counts = np.asarray(observed_counts, dtype=float)
    m = int(domain_size) if domain_size is not None else counts.shape[-1]
    counts = _validate(counts, m)
    totals = _validated_totals(counts)
    matrix = PerturbationMatrix(retention_probability, m)
    return (counts / totals - matrix.off_diagonal) / matrix.retention_probability


def mle_frequencies_matrix(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
) -> np.ndarray:
    """Matrix-form MLE ``P^-1 . O*/|S|`` (Theorem 1); equals :func:`mle_frequencies`."""
    counts = np.asarray(observed_counts, dtype=float)
    m = int(domain_size) if domain_size is not None else counts.shape[-1]
    counts = _validate(counts, m)
    totals = _validated_totals(counts)
    matrix = PerturbationMatrix(retention_probability, m)
    observed = counts / totals
    if observed.ndim == 1:
        return matrix.inverse() @ observed
    # Batched: one row per subset.  P^-1 is symmetric for the uniform
    # operator, but transpose anyway so the expression stays correct for any
    # future non-symmetric matrix.
    return observed @ matrix.inverse().T


def mle_frequencies_clipped(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
) -> np.ndarray:
    """MLE projected onto the probability simplex (non-negative, sums to one).

    The raw MLE already sums to one; clipping negative entries to zero and
    renormalising gives the standard feasible estimator used when the result
    must be a valid distribution.  A vector whose every entry clips to zero
    falls back to the uniform distribution.
    """
    raw = mle_frequencies(observed_counts, retention_probability, domain_size)
    clipped = np.clip(raw, 0.0, None)
    totals = clipped.sum(axis=-1, keepdims=True)
    m = clipped.shape[-1]
    safe_totals = np.where(totals == 0, 1.0, totals)
    return np.where(totals == 0, 1.0 / m, clipped / safe_totals)


def reconstruct_counts(
    observed_counts: np.ndarray,
    retention_probability: float,
    domain_size: int | None = None,
    clip: bool = False,
) -> np.ndarray:
    """Reconstructed absolute counts ``|S| * F'`` for perturbed subset(s).

    This is the estimator behind the paper's query answering (Section 6.1):
    ``est = |S*| * F'``.  With ``clip=True`` the clipped MLE is used.  Batched
    inputs of shape ``(..., m)`` reconstruct each vector independently.
    """
    counts = np.asarray(observed_counts, dtype=float)
    totals = counts.sum(axis=-1, keepdims=True)
    estimator = mle_frequencies_clipped if clip else mle_frequencies
    reconstructed = totals * estimator(counts, retention_probability, domain_size)
    return reconstructed
