"""Frequency reconstruction from uniformly perturbed data.

Given a perturbed subset ``S*`` and the perturbation parameters ``(p, m)``,
this package estimates the original SA frequency vector of ``S``:

* :mod:`repro.reconstruction.mle` — the maximum-likelihood estimator of
  Theorem 1 / Lemma 2, in its closed form, matrix-inverse form, and a clipped
  variant that projects onto the probability simplex;
* :mod:`repro.reconstruction.iterative` — the iterative Bayesian (EM)
  reconstruction of Agrawal & Srikant, used as a robustness ablation;
* :mod:`repro.reconstruction.variance` — the exact variance of the MLE and
  the error analysis behind Section 4.2.
"""

from repro.reconstruction.mle import (
    mle_frequencies,
    mle_frequencies_matrix,
    mle_frequencies_clipped,
    mle_frequency,
    reconstruct_counts,
)
from repro.reconstruction.iterative import iterative_bayes_frequencies
from repro.reconstruction.variance import mle_variance, expected_observed_count

__all__ = [
    "mle_frequencies",
    "mle_frequencies_matrix",
    "mle_frequencies_clipped",
    "mle_frequency",
    "reconstruct_counts",
    "iterative_bayes_frequencies",
    "mle_variance",
    "expected_observed_count",
]
