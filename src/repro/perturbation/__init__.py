"""Uniform perturbation (randomised response) substrate.

Implements the data-perturbation operator of Section 3.1: for each record the
sensitive value is retained with probability ``p`` and otherwise replaced by a
value drawn uniformly from the whole SA domain.  The operator is characterised
by the ``m x m`` matrix **P** of Equation (3), implemented in
:mod:`repro.perturbation.matrix`.  :mod:`repro.perturbation.rho_privacy`
relates the retention probability to the rho1-rho2 privacy-breach criterion,
which the paper cites as the usual way to pick ``p``.
"""

from repro.perturbation.matrix import PerturbationMatrix
from repro.perturbation.uniform import UniformPerturbation, perturb_table
from repro.perturbation.rho_privacy import (
    amplification_factor,
    max_retention_for_rho_privacy,
    satisfies_rho_privacy,
)

__all__ = [
    "PerturbationMatrix",
    "UniformPerturbation",
    "perturb_table",
    "amplification_factor",
    "max_retention_for_rho_privacy",
    "satisfies_rho_privacy",
]
