"""Uniform perturbation of the sensitive attribute (Section 3.1).

For each record independently: toss a coin with head probability ``p``; on
heads keep the SA value, on tails replace it with a value drawn uniformly at
random from the whole SA domain (the original value included, hence the
``(1 - p) / m`` off-diagonal of the perturbation matrix).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.table import Table
from repro.perturbation.matrix import PerturbationMatrix
from repro.utils.rng import default_rng


class UniformPerturbation:
    """The uniform-perturbation operator ``UP`` used as the paper's baseline.

    Parameters
    ----------
    retention_probability:
        ``p``, the probability a record keeps its original sensitive value.
    domain_size:
        ``m``, the sensitive domain size.
    """

    def __init__(self, retention_probability: float, domain_size: int) -> None:
        self._matrix = PerturbationMatrix(retention_probability, domain_size)

    @property
    def matrix(self) -> PerturbationMatrix:
        """The transition matrix **P** characterising the operator."""
        return self._matrix

    @property
    def retention_probability(self) -> float:
        """``p``."""
        return self._matrix.retention_probability

    @property
    def domain_size(self) -> int:
        """``m``."""
        return self._matrix.domain_size

    def perturb_codes(
        self, sensitive_codes: np.ndarray, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Perturb an array of SA integer codes and return the published codes."""
        rng = default_rng(rng)
        codes = np.asarray(sensitive_codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError("sensitive_codes must be one-dimensional")
        if codes.size and (codes.min() < 0 or codes.max() >= self.domain_size):
            raise ValueError("sensitive code outside the SA domain")
        retain = rng.random(codes.size) < self.retention_probability
        replacements = rng.integers(0, self.domain_size, size=codes.size)
        return np.where(retain, codes, replacements).astype(np.int64)

    def perturb_table(self, table: Table, rng: int | np.random.Generator | None = None) -> Table:
        """Publish ``D*``: the same NA columns with a perturbed SA column."""
        if table.schema.sensitive_domain_size != self.domain_size:
            raise ValueError(
                "perturbation domain size does not match the table's sensitive domain"
            )
        return table.with_sensitive_codes(self.perturb_codes(table.sensitive_codes, rng))


def perturb_table(
    table: Table,
    retention_probability: float,
    rng: int | np.random.Generator | None = None,
) -> Table:
    """Convenience wrapper: uniformly perturb ``table``'s SA column.

    Equivalent to constructing :class:`UniformPerturbation` with the table's
    own sensitive domain size and calling :meth:`~UniformPerturbation.perturb_table`.
    """
    operator = UniformPerturbation(retention_probability, table.schema.sensitive_domain_size)
    return operator.perturb_table(table, rng)
