"""The uniform-perturbation matrix **P** of Equation (3).

``P[j, i]`` is the probability that an original sensitive value ``sa_i`` is
published as ``sa_j``:

* ``P[i, i] = p + (1 - p) / m``   (the value is retained, or replaced by itself),
* ``P[j, i] = (1 - p) / m`` for ``j != i``.

The matrix is column-stochastic, symmetric, and invertible for every
``0 < p <= 1``; its inverse is what the matrix-form MLE of Theorem 1 applies
to the observed counts.
"""

from __future__ import annotations

import numpy as np


class PerturbationMatrix:
    """The ``m x m`` uniform-perturbation transition matrix.

    Parameters
    ----------
    retention_probability:
        ``p`` in the paper, with ``0 < p <= 1``.  ``p = 1`` publishes the data
        unchanged and is allowed as the degenerate no-privacy case.
    domain_size:
        ``m``, the number of sensitive values, at least 2.
    """

    def __init__(self, retention_probability: float, domain_size: int) -> None:
        if not 0 < retention_probability <= 1:
            raise ValueError("retention probability must be in (0, 1]")
        if domain_size < 2:
            raise ValueError("the sensitive domain must have at least 2 values")
        self._p = float(retention_probability)
        self._m = int(domain_size)

    # ------------------------------------------------------------------ #
    @property
    def retention_probability(self) -> float:
        """``p``: the probability a sensitive value survives perturbation unchanged."""
        return self._p

    @property
    def domain_size(self) -> int:
        """``m``: the sensitive domain size."""
        return self._m

    @property
    def off_diagonal(self) -> float:
        """``(1 - p) / m``: probability mass moved to each specific other value."""
        return (1.0 - self._p) / self._m

    @property
    def diagonal(self) -> float:
        """``p + (1 - p) / m``: probability the published value equals the original."""
        return self._p + self.off_diagonal

    # ------------------------------------------------------------------ #
    def as_array(self) -> np.ndarray:
        """Materialise **P** as an ``(m, m)`` array (column ``i`` = original value ``i``)."""
        matrix = np.full((self._m, self._m), self.off_diagonal, dtype=float)
        np.fill_diagonal(matrix, self.diagonal)
        return matrix

    def inverse(self) -> np.ndarray:
        """The closed-form inverse of **P**.

        ``P = p * I + ((1 - p) / m) * J`` where ``J`` is the all-ones matrix,
        so by the Sherman-Morrison formula
        ``P^-1 = (1/p) * I - ((1 - p) / (p * m)) * J``.
        """
        identity = np.eye(self._m)
        ones = np.ones((self._m, self._m))
        return identity / self._p - ones * (1.0 - self._p) / (self._p * self._m)

    def apply_to_frequencies(self, frequencies: np.ndarray) -> np.ndarray:
        """Expected published frequencies ``P @ f`` for original frequencies ``f``."""
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.shape != (self._m,):
            raise ValueError(f"frequencies must have shape ({self._m},)")
        return self._p * frequencies + self.off_diagonal * frequencies.sum()

    def invert_frequencies(self, observed: np.ndarray) -> np.ndarray:
        """Apply ``P^-1`` to observed frequencies (the matrix-form MLE of Theorem 1)."""
        observed = np.asarray(observed, dtype=float)
        if observed.shape != (self._m,):
            raise ValueError(f"observed must have shape ({self._m},)")
        return (observed - self.off_diagonal * observed.sum()) / self._p

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PerturbationMatrix):
            return NotImplemented
        return self._p == other._p and self._m == other._m

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerturbationMatrix(p={self._p}, m={self._m})"
