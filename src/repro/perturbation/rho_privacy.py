"""rho1-rho2 privacy-breach analysis for uniform perturbation.

The paper (Section 3.1 and Definition 4) leaves the retention probability
``p`` as an input and notes that "other privacy criteria, such as rho1-rho2
privacy, can be enforced through a proper choice of p".  This module supplies
that choice, following Evfimievski, Gehrke & Srikant (PODS 2003): a
randomisation operator permits no upward (rho1, rho2) privacy breach if its
*amplification factor* gamma satisfies

    rho2 / (1 - rho2) * (1 - rho1) / rho1  >=  gamma,

where gamma is the largest ratio ``P[j, i] / P[j, i']`` over published value
``j`` and original values ``i, i'``.  For uniform perturbation
``gamma = (p + (1 - p) / m) / ((1 - p) / m)``.
"""

from __future__ import annotations

import math

from repro.perturbation.matrix import PerturbationMatrix


def amplification_factor(retention_probability: float, domain_size: int) -> float:
    """The amplification factor ``gamma`` of uniform perturbation.

    ``gamma = (p + (1 - p)/m) / ((1 - p)/m)``; it is ``inf`` for ``p = 1``
    (publishing the raw value amplifies without bound).
    """
    matrix = PerturbationMatrix(retention_probability, domain_size)
    if matrix.off_diagonal == 0:
        return math.inf
    return matrix.diagonal / matrix.off_diagonal


def breach_threshold(rho1: float, rho2: float) -> float:
    """The largest amplification factor compatible with no (rho1, rho2) breach."""
    _validate_rhos(rho1, rho2)
    return (rho2 / (1.0 - rho2)) * ((1.0 - rho1) / rho1)


def satisfies_rho_privacy(
    retention_probability: float, domain_size: int, rho1: float, rho2: float
) -> bool:
    """Whether uniform perturbation with this ``p`` avoids (rho1, rho2) breaches.

    A small relative tolerance absorbs floating-point error so that the ``p``
    returned by :func:`max_retention_for_rho_privacy` (which sits exactly on
    the boundary) tests as satisfying.
    """
    threshold = breach_threshold(rho1, rho2)
    return amplification_factor(retention_probability, domain_size) <= threshold * (1 + 1e-12) + 1e-12


def max_retention_for_rho_privacy(domain_size: int, rho1: float, rho2: float) -> float:
    """The largest retention probability ``p`` that avoids (rho1, rho2) breaches.

    Solving ``(p + (1-p)/m) / ((1-p)/m) <= threshold`` for ``p`` gives
    ``p <= (threshold - 1) / (threshold - 1 + m)``.
    Returns 0 if no positive ``p`` works (i.e. ``threshold <= 1``).
    """
    if domain_size < 2:
        raise ValueError("the sensitive domain must have at least 2 values")
    threshold = breach_threshold(rho1, rho2)
    if threshold <= 1.0:
        return 0.0
    return (threshold - 1.0) / (threshold - 1.0 + domain_size)


def _validate_rhos(rho1: float, rho2: float) -> None:
    if not 0.0 < rho1 < 1.0 or not 0.0 < rho2 < 1.0:
        raise ValueError("rho1 and rho2 must lie strictly between 0 and 1")
    if rho2 <= rho1:
        raise ValueError("a breach requires rho2 > rho1")
