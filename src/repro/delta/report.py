"""The result object of a base or delta publish."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.criterion import PrivacySpec
from repro.core.sps import GroupPublication
from repro.core.testing import PrivacyAudit
from repro.dataset.schema import Schema
from repro.delta.state import DeltaState


@dataclass(frozen=True)
class DeltaReport:
    """What a :mod:`repro.delta` publish did, plus the successor state.

    ``mode`` distinguishes the three outcomes: ``"base"`` (initial capture),
    ``"delta"`` (only dirty chunks regenerated and spliced) and ``"full"``
    (the loud fallback: the sensitive domain grew, so every chunk's draws
    changed and all of them were regenerated — still byte-identical to a
    full re-publish, just without the incremental saving).
    """

    mode: str
    strategy: str
    params: dict[str, Any]
    seed: int
    chunk_size: int
    chunk_rows: int
    workers: int
    #: Total input rows after this publish (base plus all appends).
    n_rows: int
    #: Rows this run appended (0 for a base publish).
    rows_appended: int
    #: Personal groups after this publish.
    n_groups: int
    #: Distinct groups the appended rows fell into (0 for a base publish).
    groups_touched: int
    #: Kernel chunks of the published output.
    n_chunks: int
    #: Chunks whose kernels were (re)run — all of them for base/full mode.
    n_chunks_dirty: int
    #: Records in the published CSV.
    published_records: int
    schema: Schema
    spec: PrivacySpec | None
    audit: PrivacyAudit | None
    #: Per-group publication records of the chunks this run executed.
    groups: tuple[GroupPublication, ...]
    #: Per-stage wall-clock seconds (span-derived).
    timings: dict[str, float] = field(default_factory=dict)
    #: Path of the published CSV.
    output: str = ""
    #: The successor state (feed it to the next ``delta_publish``).
    state: DeltaState | None = None

    @property
    def dirty_fraction(self) -> float:
        """Fraction of chunks that had to be regenerated."""
        if self.n_chunks == 0:
            return 0.0
        return self.n_chunks_dirty / self.n_chunks

    @property
    def total_seconds(self) -> float:
        """Sum of the per-stage timings (the run's wall-clock)."""
        return sum(self.timings.values())

    def summary(self) -> dict[str, Any]:
        """JSON-ready digest (what the ``repro-delta`` CLI prints)."""
        audit: dict[str, Any] | None = None
        if self.audit is not None:
            audit = {
                "n_groups": self.audit.n_groups,
                "group_violation_rate": self.audit.group_violation_rate,
                "record_violation_rate": self.audit.record_violation_rate,
                "is_private": self.audit.is_private,
            }
        return {
            "mode": self.mode,
            "strategy": self.strategy,
            "params": dict(self.params),
            "seed": self.seed,
            "chunk_size": self.chunk_size,
            "chunk_rows": self.chunk_rows,
            "workers": self.workers,
            "n_rows": self.n_rows,
            "rows_appended": self.rows_appended,
            "n_groups": self.n_groups,
            "groups_touched": self.groups_touched,
            "n_chunks": self.n_chunks,
            "n_chunks_dirty": self.n_chunks_dirty,
            "dirty_fraction": self.dirty_fraction,
            "published_records": self.published_records,
            "audit": audit,
            "timings": dict(self.timings),
            "total_seconds": self.total_seconds,
            "output": self.output,
        }
