"""Incremental (delta) re-publishing for living datasets.

Publish once with :func:`publish_base`, then fold appended rows in with
:func:`delta_publish`: only the kernel chunks whose personal groups changed
are re-run, everything else is spliced straight out of the previously
published CSV, and the result is byte-identical to a full re-publish of the
combined data — same CSV bytes, same audit, same per-chunk RNG streams.
See ``docs/delta.md`` for the affected-group model and the determinism
contract, and :class:`repro.pipeline.strategy.PublishStrategy.delta_capable`
for which strategies support it.
"""

from repro.delta.engine import DeltaUnsupportedError, delta_publish, publish_base
from repro.delta.report import DeltaReport
from repro.delta.state import DeltaState

__all__ = [
    "DeltaReport",
    "DeltaState",
    "DeltaUnsupportedError",
    "delta_publish",
    "publish_base",
]
