"""The ``repro-delta`` command line: incremental re-publishing from the shell.

Usage (installed console script, or ``python -m repro.delta``)::

    repro-delta init data.csv --sensitive Income --output published.csv \\
        --state dataset.delta.json --seed 7
    repro-delta append new_rows.csv --state dataset.delta.json

``init`` publishes the base dataset (byte-identical to ``repro-stream`` for
the same seed and chunk size) and writes the delta state file the next
``append`` needs; ``append`` merges the new rows, regenerates only the
affected kernel chunks, splices them into the published CSV atomically, and
rewrites the state file to the successor state.  Both subcommands print the
run's JSON summary to stdout; progress and errors go to stderr through
stdlib logging.  ``--trace PATH`` records the run's span tree as a
schema-validated JSONL trace (never changes the published bytes).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import sys
from collections.abc import Sequence
from typing import Any

from repro import __version__
from repro.dataset.schema import SchemaError
from repro.delta.engine import delta_publish, publish_base
from repro.delta.state import DeltaState
from repro.obs import Tracer, configure_cli_logging, export
from repro.pipeline.execution import DEFAULT_CHUNK_ROWS, DEFAULT_CHUNK_SIZE
from repro.pipeline.params import ParamError
from repro.pipeline.strategy import UnknownStrategyError, available_strategies

_log = logging.getLogger("repro.delta")

#: CLI flag -> strategy parameter name (only flags the user passed are sent).
_PARAM_FLAGS = {
    "lam": "lam",
    "delta": "delta",
    "retention": "retention_probability",
    "epsilon": "epsilon",
    "dp_delta": "dp_delta",
    "sensitivity": "sensitivity",
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-delta`` argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-delta",
        description="Incrementally re-publish a living dataset as rows are appended.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser(
        "init", help="publish a base dataset and capture its delta state"
    )
    init.add_argument("source", help="CSV file to publish")
    init.add_argument("--sensitive", required=True, help="sensitive column name")
    init.add_argument(
        "--strategy", default="sps",
        help="delta-capable publishing strategy (default sps; registered: "
        f"{', '.join(available_strategies())})",
    )
    init.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    init.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="personal groups per work chunk (affects the published bytes)",
    )
    init.add_argument(
        "--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
        help="CSV records per ingestion chunk (memory knob; "
        "does not affect the published bytes)",
    )
    init.add_argument(
        "--output", metavar="PATH", required=True,
        help="write published rows to this CSV (appends splice it in place)",
    )
    init.add_argument(
        "--state", metavar="PATH", required=True,
        help="write the delta state (JSON) here for later appends",
    )
    init.add_argument("--lam", type=float)
    init.add_argument("--delta", type=float)
    init.add_argument("--retention", type=float, help="retention probability p")
    init.add_argument("--epsilon", type=float)
    init.add_argument("--dp-delta", type=float, dest="dp_delta")
    init.add_argument("--sensitivity", type=float)

    append = sub.add_parser(
        "append", help="fold appended rows into a published dataset incrementally"
    )
    append.add_argument("source", help="CSV file of appended rows (same header)")
    append.add_argument(
        "--state", metavar="PATH", required=True,
        help="delta state written by a previous init/append (rewritten on success)",
    )
    append.add_argument(
        "--output", metavar="PATH",
        help="write the spliced CSV here instead of replacing in place",
    )

    for cmd in (init, append):
        cmd.add_argument(
            "--workers", type=int, default=1,
            help="fan chunk kernels out over this many worker processes "
            "(never affects the published bytes)",
        )
        cmd.add_argument("--delimiter", default=",", help="source field delimiter")
        cmd.add_argument(
            "--no-audit", action="store_true", help="skip the audit stage"
        )
        cmd.add_argument(
            "--progress", action="store_true", help="log phase progress to stderr"
        )
        cmd.add_argument(
            "--trace", metavar="PATH",
            help="record the run's spans and write them as a JSONL trace "
            "(never changes the published bytes)",
        )
        volume = cmd.add_mutually_exclusive_group()
        volume.add_argument(
            "--verbose", action="store_true",
            help="debug-level logging plus live logfmt span lines on stderr",
        )
        volume.add_argument(
            "--quiet", action="store_true", help="errors only on stderr"
        )
    return parser


def _collect_params(args: argparse.Namespace) -> dict[str, float]:
    params: dict[str, float] = {}
    for flag, name in _PARAM_FLAGS.items():
        value = getattr(args, flag, None)
        if value is not None:
            params[name] = value
    return params


def _progress_logger(event: dict[str, Any]) -> None:
    phase = event.get("phase")
    if phase in ("read", "append_read"):
        _log.info(
            "%s: %s rows (%s chunks)",
            phase, event["rows_read"], event["chunks_read"],
        )
    elif phase == "diff":
        _log.info(
            "diff: %s of %s chunks dirty (%s mode)",
            event["n_chunks_dirty"], event["n_chunks"], event["mode"],
        )
    elif phase in ("enforce", "splice"):
        done = event.get("groups_done", event.get("chunks_done", 0))
        total = event.get("n_groups", event.get("n_chunks", 0))
        _log.info(
            "%s: %s/%s (%s records published)",
            phase, done, total, event["published_records"],
        )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-delta`` console script.

    Example (non-zero exits: 2 for bad input, schema, parameter or
    unsupported-strategy errors)::

        repro-delta init data.csv --sensitive Income \\
            --output published.csv --state dataset.delta.json
        repro-delta append new_rows.csv --state dataset.delta.json
    """
    args = build_parser().parse_args(argv)
    configure_cli_logging(verbose=args.verbose, quiet=args.quiet)
    tracer = Tracer(live=sys.stderr if args.verbose else None) if (
        args.trace or args.verbose
    ) else None
    progress = _progress_logger if (args.progress or args.verbose) else None
    try:
        with tracer if tracer is not None else contextlib.nullcontext():
            if args.command == "init":
                report = publish_base(
                    args.source,
                    sensitive=args.sensitive,
                    output=args.output,
                    strategy=args.strategy,
                    rng=args.seed,
                    chunk_size=args.chunk_size,
                    chunk_rows=args.chunk_rows,
                    workers=args.workers,
                    audit=not args.no_audit,
                    delimiter=args.delimiter,
                    progress=progress,
                    **_collect_params(args),
                )
            else:
                state = DeltaState.load(args.state)
                report = delta_publish(
                    state,
                    args.source,
                    output=args.output,
                    workers=args.workers,
                    audit=not args.no_audit,
                    delimiter=args.delimiter,
                    progress=progress,
                )
        assert report.state is not None
        report.state.save(args.state)
    except (SchemaError, ParamError, UnknownStrategyError, ValueError, OSError) as exc:
        _log.error("error: %s", exc)
        return 2
    if args.trace and tracer is not None:
        export.write_trace(tracer, args.trace)
        _log.info("trace written to %s (%d spans)", args.trace, len(tracer.spans))
    json.dump(report.summary(), sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
