"""The incremental (delta) re-publish engine.

The paper's group-wise publishing model makes appends cheap: published
output is a pure function of the ordered personal-group list, the seed and
the chunk size, and each kernel chunk draws from its own spawned generator
(``SeedSequence(seed).spawn(n)[i]`` depends only on ``i``, never on ``n``).
So when rows are appended, only the chunks whose group slice actually
changed need their kernels re-run — every other chunk's bytes are already
sitting in the published CSV and are copied, not recomputed.

:func:`publish_base` publishes a source once and captures a
:class:`~repro.delta.state.DeltaState`; :func:`delta_publish` merges
appended rows into the stored counts (via an
:class:`~repro.stream.index.IncrementalGroupIndex` over the *appended rows
only* — the delta-determinism lint rule ``RPR007`` statically forbids
full-table re-indexing here), diffs the merged group list against the
stored one position-by-position, regenerates exactly the dirty chunks with
the same pre-assigned per-chunk generators the stream/parallel engines use,
and splices the result together atomically (temp file + ``os.replace``, so
a failure at any point leaves the previously published file untouched).

Determinism contract (pinned by ``tests/test_delta.py`` and the hypothesis
suite in ``tests/test_delta_properties.py``): for every strategy declaring
``delta_capable`` and any ``(seed, chunk_rows, workers, append split)``,
``delta_publish(published_base, appended)`` is byte-identical to a full
publish of ``base + appended`` — CSV bytes, audit and per-chunk RNG streams.
When the append grows the **sensitive** domain, every chunk's draws change
(the perturbation matrix dimension ``m`` changes); the engine then falls
back to regenerating all chunks — loudly, via a warning log and
``report.mode == "full"`` — rather than silently diverging.
"""

from __future__ import annotations

import csv
import logging
import os
import tempfile
from collections.abc import Callable, Iterator, Sequence
from contextlib import closing
from pathlib import Path
from typing import IO, Any, cast

from repro.core.testing import PrivacyAudit, audit_group
from repro.dataset.schema import Schema, SchemaError
from repro.delta.report import DeltaReport
from repro.delta.state import (
    DeltaState,
    ValueGroups,
    coded_groups,
    schema_from_value_groups,
)
from repro.obs.metrics import (
    DELTA_GROUPS_TOUCHED,
    DELTA_ROWS_APPENDED,
    PUBLISH_RUNS,
    ROWS_PUBLISHED,
)
from repro.obs.trace import span
from repro.parallel.kernels import (
    CsvChunkKernel,
    EncodedBlock,
    MissingChunkPublisher,
    StrategyKernel,
)
from repro.parallel.scheduler import (
    DEFAULT_BACKEND,
    iter_chunk_results,
    iter_ordered_map,
)
from repro.pipeline.execution import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_CHUNK_SIZE,
    chunk_items,
    chunk_rngs,
    coerce_seed,
)
from repro.pipeline.strategy import PublishStrategy, get_strategy
from repro.stream.index import IncrementalGroupIndex
from repro.stream.reader import ChunkedReader

_log = logging.getLogger("repro.delta")

#: Optional progress callback: small JSON-ready dicts with a ``phase`` key.
ProgressCallback = Callable[[dict[str, Any]], None]


class DeltaUnsupportedError(ValueError):
    """The strategy declares no incremental re-publish support.

    Raised by :func:`publish_base` (and re-checked by :func:`delta_publish`)
    for strategies with ``delta_capable = False`` — e.g. ``uniform``, whose
    draws walk one global row spool, or ``generalize+sps``, where one
    appended row can re-key every group.  Use a full re-publish
    (:func:`repro.publish` / :func:`repro.stream.stream_publish`) instead.
    """


class _SchemaHolder:
    """Minimal table stand-in for ``strategy.spec_for`` (schema access only)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema


class _SpliceWriter:
    """Atomic CSV writer: temp file in the target's directory + ``os.replace``.

    Every byte goes to the temp file; :meth:`close` renames it over the
    target in one atomic step, so a failure anywhere before that — a worker
    dying mid-regeneration, a disk error mid-copy — leaves the previously
    published file exactly as it was (:meth:`abort` removes the temp).
    """

    def __init__(self, target: Path, header: Sequence[str]) -> None:
        self.target = target
        fd, name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name + ".", suffix=".tmp"
        )
        self._temp = Path(name)
        self._handle: IO[str] = os.fdopen(fd, "w", newline="", encoding="utf-8")
        self._writer = csv.writer(self._handle)
        self._writer.writerow(list(header))
        self.records_written = 0

    def write_rows(self, rows: Sequence[Sequence[str]]) -> None:
        """Append decoded rows (the clean-chunk copy path)."""
        self._writer.writerows(rows)
        self.records_written += len(rows)

    def write_encoded(self, encoded: EncodedBlock) -> None:
        """Append worker-rendered CSV text (the regenerated-chunk path)."""
        self._handle.write(encoded.text)
        self.records_written += encoded.n_rows

    def close(self) -> None:
        """Flush and atomically move the temp file over the target."""
        self._handle.close()
        os.replace(self._temp, self.target)

    def abort(self) -> None:
        """Discard the temp file; the target is untouched by construction."""
        try:
            self._handle.close()
        finally:
            self._temp.unlink(missing_ok=True)


def _require_delta_capable(strategy: PublishStrategy) -> None:
    if not strategy.delta_capable:
        raise DeltaUnsupportedError(
            f"strategy {strategy.name!r} declares delta_capable = False: its "
            "published bytes are not a per-chunk function of the group "
            "counts, so an append cannot be spliced incrementally; re-publish "
            "in full with repro.publish or repro.stream.stream_publish"
        )


def _require_output_path(output: Any) -> Path:
    if output is None or hasattr(output, "write"):
        raise ValueError(
            "delta publishing requires a CSV output *path*: the splice step "
            "re-reads the published file and atomically replaces it"
        )
    return Path(output)


def _value_groups(schema: Schema, groups: Sequence[Any]) -> ValueGroups:
    """Decode coded groups to value-keyed counts (the stored representation)."""
    publics = [attr.values for attr in schema.public]
    sa_values = schema.sensitive.values
    out: list[tuple[tuple[str, ...], dict[str, int]]] = []
    for group in groups:
        key = tuple(publics[i][code] for i, code in enumerate(group.key))
        counts = {
            sa_values[j]: int(n)
            for j, n in enumerate(group.sensitive_counts)
            if n
        }
        out.append((key, counts))
    return tuple(out)


def _build_kernel(
    strategy: PublishStrategy, schema: Schema, spec: Any, resolved: dict[str, Any]
) -> CsvChunkKernel:
    kernel = StrategyKernel(strategy, schema, spec, dict(resolved))
    try:
        kernel.build()  # fail fast in the parent; workers rebuild their copy
    except MissingChunkPublisher:
        raise DeltaUnsupportedError(
            f"strategy {strategy.name!r} returned no chunk publisher for this "
            "configuration; it cannot publish in chunks, so it cannot be "
            "delta-published either"
        ) from None
    return CsvChunkKernel(kernel)


def publish_base(
    source: str | Path | IO[str],
    *,
    sensitive: str,
    output: str | Path,
    strategy: str | PublishStrategy = "sps",
    rng: Any = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    workers: int = 1,
    parallel_backend: str = DEFAULT_BACKEND,
    audit: bool = True,
    overwrite: bool = True,
    delimiter: str = ",",
    progress: ProgressCallback | None = None,
    **params: Any,
) -> DeltaReport:
    """Publish ``source`` once and capture the state future appends need.

    The published CSV is byte-identical to
    :func:`repro.stream.stream_publish` (and hence to :func:`repro.publish`)
    for the same ``(seed, chunk_size)``; on top of that, the returned
    report's ``state`` records the value-keyed group counts and per-chunk
    published row counts that make :func:`delta_publish` possible.

    Raises :class:`DeltaUnsupportedError` for strategies that declare
    ``delta_capable = False``.
    """
    strategy = get_strategy(strategy) if isinstance(strategy, str) else strategy
    _require_delta_capable(strategy)
    target = _require_output_path(output)
    if workers <= 0:
        raise ValueError("workers must be positive")
    timings: dict[str, float] = {}
    notify = progress or (lambda event: None)

    with span(
        "delta_base", kind="publish", path="delta", strategy=strategy.name
    ) as root:
        with span("prepare", kind="stage") as sp:
            resolved = strategy.resolve(params)
            seed = coerce_seed(rng)
            if chunk_size <= 0:
                raise ValueError("chunk_size must be positive")
            if not overwrite and target.exists():
                raise FileExistsError(f"output {target} exists and overwrite=False")
        timings["prepare"] = sp.duration
        root.set(seed=seed, chunk_size=chunk_size, chunk_rows=chunk_rows,
                 workers=workers)

        with span("read", kind="stage") as sp:
            reader = ChunkedReader(
                source, sensitive, chunk_rows=chunk_rows, delimiter=delimiter
            )
            index: IncrementalGroupIndex | None = None
            for chunk in reader.chunks():
                if index is None:
                    index = IncrementalGroupIndex(reader.public_names or [], sensitive)
                index.update(chunk)
                notify({
                    "phase": "read",
                    "rows_read": reader.rows_read,
                    "chunks_read": reader.chunks_read,
                })
            assert index is not None  # reader raises on empty input
            sp.set(rows=reader.rows_read)
        timings["read"] = sp.duration

        with span("group_index", kind="stage") as sp:
            schema, groups = index.finalize()
        timings["group_index"] = sp.duration
        notify({"phase": "group_index", "n_groups": len(groups)})

        spec = strategy.spec_for(cast(Any, _SchemaHolder(schema)), resolved)

        with span("audit", kind="stage", ran=audit and strategy.audits) as sp:
            privacy_audit: PrivacyAudit | None = None
            if audit and strategy.audits and spec is not None:
                audits = tuple(audit_group(spec, cast(Any, group)) for group in groups)
                privacy_audit = PrivacyAudit(
                    spec=spec, groups=audits, total_records=index.n_rows
                )
        timings["audit"] = sp.duration

        with span("enforce", kind="stage") as sp:
            chunk_fn = _build_kernel(strategy, schema, spec, resolved)
            writer = _SpliceWriter(
                target, list(schema.public_names) + [schema.sensitive_name]
            )
            chunk_counts: list[int] = []
            records: list[Any] = []
            try:
                results = iter_chunk_results(
                    groups, chunk_fn, seed, chunk_size,
                    workers=workers, backend=parallel_backend,
                )
                for encoded, chunk_records in results:
                    writer.write_encoded(encoded)
                    chunk_counts.append(encoded.n_rows)
                    records.extend(chunk_records)
                    notify({
                        "phase": "enforce",
                        "groups_done": min(len(chunk_counts) * chunk_size, len(groups)),
                        "n_groups": len(groups),
                        "published_records": writer.records_written,
                    })
            except BaseException:
                writer.abort()
                raise
        timings["enforce"] = sp.duration

        with span("flush", kind="stage") as sp:
            writer.close()
        timings["flush"] = sp.duration
        notify({"phase": "done", "published_records": writer.records_written})

        timings["finalize"] = max(0.0, root.elapsed() - sum(timings.values()))
        root.set(rows=index.n_rows, published_records=writer.records_written)

    PUBLISH_RUNS.inc(path="delta", strategy=strategy.name)
    ROWS_PUBLISHED.inc(writer.records_written, strategy=strategy.name)
    state = DeltaState(
        strategy=strategy.name,
        params=dict(resolved),
        seed=seed,
        chunk_size=int(chunk_size),
        chunk_rows=int(chunk_rows),
        n_rows=index.n_rows,
        sensitive=sensitive,
        header=tuple(reader.header or []),
        groups=_value_groups(schema, groups),
        chunk_row_counts=tuple(chunk_counts),
        output=str(target),
    )
    return DeltaReport(
        mode="base",
        strategy=strategy.name,
        params=dict(resolved),
        seed=seed,
        chunk_size=int(chunk_size),
        chunk_rows=int(chunk_rows),
        workers=int(workers),
        n_rows=index.n_rows,
        rows_appended=0,
        n_groups=len(groups),
        groups_touched=0,
        n_chunks=len(chunk_counts),
        n_chunks_dirty=len(chunk_counts),
        published_records=writer.records_written,
        schema=schema,
        spec=spec,
        audit=privacy_audit,
        groups=tuple(records),
        timings=timings,
        output=str(target),
        state=state,
    )


def _read_appended(
    state: DeltaState,
    appended: Any,
    delimiter: str,
    notify: ProgressCallback,
) -> tuple[ValueGroups, int]:
    """Index the appended rows (only them) and return value-keyed counts.

    Raises :class:`~repro.dataset.schema.SchemaError` naming the source and
    line for ragged rows, a missing sensitive column, an empty batch, or a
    header that does not match the published dataset's.
    """
    if isinstance(appended, ChunkedReader):
        reader = appended
    elif isinstance(appended, (str, Path)) or hasattr(appended, "read"):
        reader = ChunkedReader(
            cast("str | Path | IO[str]", appended), state.sensitive,
            chunk_rows=state.chunk_rows, delimiter=delimiter,
        )
    elif hasattr(appended, "fetchone"):
        # A DB-API cursor: rows stream straight out of the database in the
        # published dataset's column order.
        reader = ChunkedReader.from_cursor(
            iter(cast("Iterator[Sequence[object]]", appended)), state.header,
            state.sensitive, chunk_rows=state.chunk_rows,
        )
    else:
        reader = ChunkedReader.from_rows(
            cast(Sequence[Sequence[str]], appended), state.header,
            state.sensitive, chunk_rows=state.chunk_rows,
        )
    index: IncrementalGroupIndex | None = None
    for chunk in reader.chunks():
        if index is None:
            if list(reader.header or []) != list(state.header):
                raise SchemaError(
                    f"{reader.label}: appended header {reader.header} does not "
                    f"match the published dataset's header {list(state.header)}"
                )
            index = IncrementalGroupIndex(state.public_names, state.sensitive)
        index.update(chunk)
        notify({
            "phase": "append_read",
            "rows_read": reader.rows_read,
            "chunks_read": reader.chunks_read,
        })
    assert index is not None  # reader raises on an empty source
    appended_schema, appended_groups = index.finalize()
    return _value_groups(appended_schema, appended_groups), index.n_rows


def _merge_groups(base: ValueGroups, appended: ValueGroups) -> ValueGroups:
    """Fold appended per-group counts into the base groups; re-sort by key."""
    merged: dict[tuple[str, ...], dict[str, int]] = {
        key: dict(counts) for key, counts in base
    }
    for key, counts in appended:
        into = merged.setdefault(key, {})
        for value, count in counts.items():
            into[value] = into.get(value, 0) + count
    return tuple((key, merged[key]) for key in sorted(merged))


def _dirty_chunks(
    base: ValueGroups, merged: ValueGroups, chunk_size: int, n_chunks: int
) -> set[int]:
    """Chunk indices whose merged group slice differs from the base slice.

    Position-wise comparison is exactly right for sorted group lists: a
    count change dirties only its own chunk, while an insertion shifts every
    later position and therefore (correctly) dirties everything after it —
    those chunks' kernel inputs really did change.
    """
    dirty: set[int] = set()
    for i in range(n_chunks):
        lo = i * chunk_size
        hi = min(lo + chunk_size, len(merged))
        for p in range(lo, hi):
            if p >= len(base) or merged[p] != base[p]:
                dirty.add(i)
                break
    return dirty


def delta_publish(
    state: DeltaState,
    appended: Any,
    *,
    output: str | Path | None = None,
    workers: int = 1,
    parallel_backend: str = DEFAULT_BACKEND,
    audit: bool = True,
    delimiter: str = ",",
    progress: ProgressCallback | None = None,
) -> DeltaReport:
    """Incrementally re-publish a dataset after appending rows.

    Parameters
    ----------
    state:
        The :class:`DeltaState` a previous :func:`publish_base` /
        :func:`delta_publish` produced.  Never mutated; the successor state
        is on the returned report.
    appended:
        The appended rows: a CSV path (same header as the base), an open
        text stream, a DB-API cursor yielding rows in the base header's
        column order (``ChunkedReader.from_cursor`` drains it with bounded
        memory), a pre-built :class:`~repro.stream.reader.ChunkedReader`,
        or an in-memory list of rows in the base header's column order (no
        header row).
    output:
        Optional new path for the spliced CSV; by default the published
        file named by ``state.output`` is replaced atomically in place.
    workers, parallel_backend:
        Fan dirty-chunk regeneration out through the shared scheduler;
        byte-identity is preserved at any worker count.
    audit:
        Re-audit from the merged counts (no row re-read — ``O(groups)``).
    delimiter:
        Field delimiter of an appended CSV source.
    progress:
        Optional callback receiving ``{"phase": ..., ...}`` dicts.

    The published bytes, the audit and the per-chunk RNG streams are
    identical to a full publish of ``base + appended`` with the state's
    ``(seed, chunk_size)``.  A failure at any point leaves the previously
    published file untouched (the splice writes a temp file and renames).
    """
    strategy = get_strategy(state.strategy)
    _require_delta_capable(strategy)
    if workers <= 0:
        raise ValueError("workers must be positive")
    n_chunks_base = len(state.chunk_row_counts)
    expected = -(-len(state.groups) // state.chunk_size) if state.groups else 0
    if n_chunks_base != expected:
        raise ValueError(
            f"delta state is inconsistent: {len(state.groups)} groups at "
            f"chunk_size {state.chunk_size} imply {expected} chunks, but "
            f"{n_chunks_base} chunk row counts are recorded"
        )
    timings: dict[str, float] = {}
    notify = progress or (lambda event: None)

    with span(
        "delta_publish", kind="publish", path="delta", strategy=state.strategy
    ) as root:
        with span("prepare", kind="stage") as sp:
            resolved = strategy.resolve(state.params)
            base_path = Path(state.output)
            target = base_path if output is None else _require_output_path(output)
        timings["prepare"] = sp.duration
        root.set(seed=state.seed, chunk_size=state.chunk_size, workers=workers)

        with span("append_read", kind="stage") as sp:
            appended_groups, rows_appended = _read_appended(
                state, appended, delimiter, notify
            )
        timings["append_read"] = sp.duration

        with span("diff", kind="stage") as sp:
            merged = _merge_groups(state.groups, appended_groups)
            new_schema = schema_from_value_groups(
                state.public_names, state.sensitive, merged
            )
            base_schema = state.schema()
            n_chunks_new = -(-len(merged) // state.chunk_size)
            sa_grew = new_schema.sensitive.values != base_schema.sensitive.values
            if sa_grew:
                # The SA domain is the dimension of the perturbation matrix:
                # every chunk's draws change, so regenerate everything — the
                # loud full fallback, still byte-identical to a full publish.
                mode = "full"
                dirty = set(range(n_chunks_new))
                _log.warning(
                    "append grew the sensitive domain (%d -> %d values); "
                    "falling back to full regeneration of all %d chunks",
                    len(base_schema.sensitive.values),
                    len(new_schema.sensitive.values),
                    n_chunks_new,
                )
            else:
                mode = "delta"
                dirty = _dirty_chunks(
                    state.groups, merged, state.chunk_size, n_chunks_new
                )
            sp.set(n_chunks=n_chunks_new, n_chunks_dirty=len(dirty), mode=mode)
        timings["diff"] = sp.duration
        notify({
            "phase": "diff",
            "mode": mode,
            "n_chunks": n_chunks_new,
            "n_chunks_dirty": len(dirty),
        })

        spec = strategy.spec_for(cast(Any, _SchemaHolder(new_schema)), resolved)
        new_groups = coded_groups(new_schema, merged)

        with span("audit", kind="stage", ran=audit and strategy.audits) as sp:
            privacy_audit: PrivacyAudit | None = None
            if audit and strategy.audits and spec is not None:
                audits = tuple(
                    audit_group(spec, cast(Any, group)) for group in new_groups
                )
                privacy_audit = PrivacyAudit(
                    spec=spec,
                    groups=audits,
                    total_records=state.n_rows + rows_appended,
                )
        timings["audit"] = sp.duration

        with span("splice", kind="stage") as sp:
            chunk_fn = _build_kernel(strategy, new_schema, spec, resolved)
            chunks = chunk_items(new_groups, state.chunk_size)
            rngs = chunk_rngs(state.seed, n_chunks_new)
            dirty_order = sorted(dirty)
            regen = iter_ordered_map(
                chunk_fn,
                ((chunks[i], rngs[i]) for i in dirty_order),
                workers=workers,
                backend=parallel_backend,
                n_tasks=len(dirty_order),
            )
            header_row = list(new_schema.public_names) + [new_schema.sensitive_name]
            writer = _SpliceWriter(target, header_row)
            new_chunk_counts: list[int] = []
            records: list[Any] = []
            try:
                with closing(regen), base_path.open(
                    newline="", encoding="utf-8"
                ) as base_handle:
                    base_rows = csv.reader(base_handle)
                    base_header = next(base_rows, None)
                    if base_header != header_row:
                        raise ValueError(
                            f"published base {base_path}: header {base_header} "
                            f"does not match the delta state (expected "
                            f"{header_row}); was the file modified outside the "
                            "delta engine?"
                        )
                    for i in range(n_chunks_new):
                        base_count = (
                            state.chunk_row_counts[i] if i < n_chunks_base else 0
                        )
                        if i in dirty:
                            for _ in range(base_count):
                                if next(base_rows, None) is None:
                                    raise ValueError(
                                        f"published base {base_path} has fewer "
                                        "rows than the delta state records; was "
                                        "it modified outside the delta engine?"
                                    )
                            encoded, chunk_records = next(regen)
                            writer.write_encoded(encoded)
                            new_chunk_counts.append(encoded.n_rows)
                            records.extend(chunk_records)
                        else:
                            rows = []
                            for _ in range(base_count):
                                row = next(base_rows, None)
                                if row is None:
                                    raise ValueError(
                                        f"published base {base_path} has fewer "
                                        "rows than the delta state records; was "
                                        "it modified outside the delta engine?"
                                    )
                                rows.append(row)
                            writer.write_rows(rows)
                            new_chunk_counts.append(base_count)
                        notify({
                            "phase": "splice",
                            "chunks_done": i + 1,
                            "n_chunks": n_chunks_new,
                            "published_records": writer.records_written,
                        })
                    if next(base_rows, None) is not None:
                        raise ValueError(
                            f"published base {base_path} has more rows than the "
                            "delta state records; was it modified outside the "
                            "delta engine?"
                        )
            except BaseException:
                writer.abort()
                raise
        timings["splice"] = sp.duration

        with span("flush", kind="stage") as sp:
            writer.close()
        timings["flush"] = sp.duration
        notify({"phase": "done", "published_records": writer.records_written})

        timings["finalize"] = max(0.0, root.elapsed() - sum(timings.values()))
        root.set(
            rows_appended=rows_appended,
            n_chunks_dirty=len(dirty),
            published_records=writer.records_written,
        )

    PUBLISH_RUNS.inc(path="delta", strategy=state.strategy)
    ROWS_PUBLISHED.inc(writer.records_written, strategy=state.strategy)
    DELTA_GROUPS_TOUCHED.inc(len(appended_groups), strategy=state.strategy)
    DELTA_ROWS_APPENDED.inc(rows_appended, strategy=state.strategy)
    new_state = DeltaState(
        strategy=state.strategy,
        params=dict(resolved),
        seed=state.seed,
        chunk_size=state.chunk_size,
        chunk_rows=state.chunk_rows,
        n_rows=state.n_rows + rows_appended,
        sensitive=state.sensitive,
        header=state.header,
        groups=merged,
        chunk_row_counts=tuple(new_chunk_counts),
        output=str(target),
    )
    return DeltaReport(
        mode=mode,
        strategy=state.strategy,
        params=dict(resolved),
        seed=state.seed,
        chunk_size=state.chunk_size,
        chunk_rows=state.chunk_rows,
        workers=int(workers),
        n_rows=state.n_rows + rows_appended,
        rows_appended=rows_appended,
        n_groups=len(merged),
        groups_touched=len(appended_groups),
        n_chunks=n_chunks_new,
        n_chunks_dirty=len(dirty),
        published_records=writer.records_written,
        schema=new_schema,
        spec=spec,
        audit=privacy_audit,
        groups=tuple(records),
        timings=timings,
        output=str(target),
        state=new_state,
    )
