"""``python -m repro.delta`` — alias for the ``repro-delta`` console script."""

from repro.delta.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
