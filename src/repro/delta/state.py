"""Persistent state of an incrementally re-publishable dataset.

A base publish (:func:`repro.delta.publish_base`) captures everything a
later append needs, so the base source never has to be re-read:

* the per-group counts, keyed by **decoded value strings** rather than
  schema codes — appended rows can then be merged even when they introduce
  new attribute values (which would shift every code);
* the per-chunk published row counts — clean chunks can then be copied out
  of the published CSV without re-running their kernels (the row count of a
  chunk depends on the kernel's draws and is unrecoverable after the fact);
* the ``(strategy, params, seed, chunk_size)`` tuple that pins the bytes.

The state is a plain JSON document (:meth:`DeltaState.save` /
:meth:`DeltaState.load`), so a publish made by one process can be appended
to by another — the ``repro-delta`` CLI round-trips it through a file and
the service persists it per dataset through a storage connector
(:class:`DeltaStateStore`), so a restarted service resumes appending where
it left off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.dataset.schema import Attribute, Schema
from repro.store.base import NS_DELTAS, StorageConnector
from repro.store.memory import MemoryConnector
from repro.stream.index import StreamGroup

#: Value-keyed personal groups: decoded NA key -> {SA value: count}, sorted
#: lexicographically by key (the published group order, since schema domains
#: are sorted).
ValueGroups = tuple[tuple[tuple[str, ...], dict[str, int]], ...]

#: Version of the serialised state document.
STATE_VERSION = 1


def schema_from_value_groups(
    public_names: list[str], sensitive: str, groups: ValueGroups
) -> Schema:
    """The schema the stored groups imply (sorted domains, sensitive last).

    Every row lives in exactly one personal group, so the observed domain of
    a column is the set of values that column takes across the group keys —
    the same domains :meth:`repro.stream.index.IncrementalGroupIndex.finalize`
    infers from the rows themselves.
    """
    domains: list[set[str]] = [set() for _ in public_names]
    sa_domain: set[str] = set()
    for key, counts in groups:
        for i, value in enumerate(key):
            domains[i].add(value)
        sa_domain.update(counts)
    return Schema(
        public=tuple(
            Attribute(name, tuple(sorted(domain)))
            for name, domain in zip(public_names, domains, strict=True)
        ),
        sensitive=Attribute(sensitive, tuple(sorted(sa_domain))),
    )


def coded_groups(schema: Schema, groups: ValueGroups) -> list[StreamGroup]:
    """Translate value-keyed groups onto ``schema``'s codes, preserving order.

    The stored order (sorted by decoded key) equals the coded lexicographic
    order because the schema's domains are sorted — so the returned list is
    exactly what the incremental index would finalize over the same rows.
    """
    codes = [
        {value: code for code, value in enumerate(attr.values)}
        for attr in schema.public
    ]
    sa_codes = {value: code for code, value in enumerate(schema.sensitive.values)}
    m = len(schema.sensitive.values)
    out: list[StreamGroup] = []
    for key, counts in groups:
        vector = np.zeros(m, dtype=np.int64)
        for value, count in counts.items():
            vector[sa_codes[value]] = count
        out.append(
            StreamGroup(
                key=tuple(codes[i][value] for i, value in enumerate(key)),
                sensitive_counts=vector,
            )
        )
    return out


@dataclass(frozen=True)
class DeltaState:
    """Everything a delta re-publish needs to know about a published base.

    Instances are immutable; :func:`repro.delta.delta_publish` returns the
    successor state on its report rather than mutating the input, so a
    failed splice can never leave the caller holding state that disagrees
    with the (untouched) published file.
    """

    #: Registered strategy name the base was published with.
    strategy: str
    #: Fully resolved strategy parameters (defaults filled in).
    params: dict[str, Any]
    #: Root seed of the per-chunk spawn tree.
    seed: int
    #: Personal groups per work chunk (pins the published bytes).
    chunk_size: int
    #: CSV records per ingestion chunk (memory knob; does not pin bytes).
    chunk_rows: int
    #: Total input rows folded in so far (base plus every applied append).
    n_rows: int
    #: Sensitive column name.
    sensitive: str
    #: Source file column order (appends must match it).
    header: tuple[str, ...]
    #: Value-keyed per-group SA counts, sorted by key.
    groups: ValueGroups
    #: Published rows per kernel chunk, in chunk order.
    chunk_row_counts: tuple[int, ...]
    #: Path of the published CSV the splice step rewrites.
    output: str

    @property
    def public_names(self) -> list[str]:
        """Public column names in file order (header minus the SA column)."""
        return [name for name in self.header if name != self.sensitive]

    @property
    def n_groups(self) -> int:
        """Number of distinct personal groups."""
        return len(self.groups)

    def schema(self) -> Schema:
        """The schema implied by the stored groups (sorted domains)."""
        return schema_from_value_groups(self.public_names, self.sensitive, self.groups)

    def with_output(self, output: str) -> "DeltaState":
        """A copy of the state pointing at a different published file."""
        return replace(self, output=output)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready dict (inverse of :meth:`from_json`)."""
        return {
            "state_version": STATE_VERSION,
            "strategy": self.strategy,
            "params": dict(self.params),
            "seed": self.seed,
            "chunk_size": self.chunk_size,
            "chunk_rows": self.chunk_rows,
            "n_rows": self.n_rows,
            "sensitive": self.sensitive,
            "header": list(self.header),
            "groups": [[list(key), dict(counts)] for key, counts in self.groups],
            "chunk_row_counts": list(self.chunk_row_counts),
            "output": self.output,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "DeltaState":
        """Rebuild a state from :meth:`to_json` output."""
        version = data.get("state_version")
        if version != STATE_VERSION:
            raise ValueError(
                f"unsupported delta state version {version!r} (expected {STATE_VERSION})"
            )
        return cls(
            strategy=str(data["strategy"]),
            params=dict(data["params"]),
            seed=int(data["seed"]),
            chunk_size=int(data["chunk_size"]),
            chunk_rows=int(data["chunk_rows"]),
            n_rows=int(data["n_rows"]),
            sensitive=str(data["sensitive"]),
            header=tuple(str(name) for name in data["header"]),
            groups=tuple(
                (tuple(str(v) for v in key), {str(k): int(n) for k, n in counts.items()})
                for key, counts in data["groups"]
            ),
            chunk_row_counts=tuple(int(n) for n in data["chunk_row_counts"]),
            output=str(data["output"]),
        )

    def save(self, path: str | Path) -> None:
        """Write the state as a JSON document."""
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | Path) -> "DeltaState":
        """Read a state written by :meth:`save`."""
        return cls.from_json(json.loads(Path(path).read_text(encoding="utf-8")))


class DeltaStateStore:
    """Versioned persistence of :class:`DeltaState` keyed by dataset name.

    States live in the ``deltas`` namespace of a
    :class:`~repro.store.base.StorageConnector`, so a restarted service
    resumes with every delta dataset appendable.  Writers pass the version
    they read (:meth:`entry`) back into :meth:`put` so a concurrent append
    through a shared store surfaces as a typed
    :class:`~repro.store.base.VersionConflictError` instead of silently
    losing the other append's group counts.
    """

    def __init__(self, store: StorageConnector | None = None) -> None:
        self._store = store if store is not None else MemoryConnector().open()

    @property
    def store(self) -> StorageConnector:
        """The connector the states persist through."""
        return self._store

    def entry(self, name: str) -> tuple[DeltaState, int] | None:
        """The state and the store version it was read at, or ``None``."""
        stored = self._store.get(NS_DELTAS, name)
        if stored is None:
            return None
        return DeltaState.from_json(stored.value), stored.version

    def get(self, name: str) -> DeltaState | None:
        """The current state of delta dataset ``name``, or ``None``."""
        found = self.entry(name)
        return found[0] if found is not None else None

    def version(self, name: str) -> int:
        """The store version of ``name`` (0 when it does not exist)."""
        stored = self._store.get(NS_DELTAS, name)
        return stored.version if stored is not None else 0

    def put(
        self, name: str, state: DeltaState, expected_version: int | None = None
    ) -> int:
        """Persist a state; returns the new version.

        ``expected_version`` follows the connector contract: ``0`` creates
        only, ``N`` replaces only if the stored state is still at ``N``,
        ``None`` writes unconditionally.
        """
        return self._store.put(
            NS_DELTAS, name, state.to_json(), expected_version=expected_version
        )

    def delete(self, name: str) -> bool:
        """Remove a delta dataset's state; returns whether it existed."""
        return self._store.delete(NS_DELTAS, name)

    def names(self) -> list[str]:
        """All delta dataset names, sorted."""
        return self._store.keys(NS_DELTAS)

    def __contains__(self, name: str) -> bool:
        return self._store.get(NS_DELTAS, name) is not None

    def __getitem__(self, name: str) -> DeltaState:
        state = self.get(name)
        if state is None:
            raise KeyError(name)
        return state

    def __setitem__(self, name: str, state: DeltaState) -> None:
        self.put(name, state)

    def __len__(self) -> int:
        return len(self.names())
