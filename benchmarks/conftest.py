"""Benchmark harness configuration.

Each benchmark module regenerates one table or figure of the paper through
pytest-benchmark (``pytest benchmarks/ --benchmark-only``).  The rendered
plain-text table/series is written to ``benchmarks/results/`` so the numbers
can be inspected after the run and are quoted in EXPERIMENTS.md.

Data sizes default to the "default" ExperimentConfig, which is scaled down
from the paper's full sizes so the whole harness finishes in a few minutes;
set the environment variable ``REPRO_BENCH_SCALE=paper`` for full-size runs or
``=quick`` for a smoke run.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import ExperimentConfig  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """The experiment configuration used by every benchmark in the session."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale == "paper":
        return ExperimentConfig.paper_scale()
    if scale == "quick":
        return ExperimentConfig.quick()
    return ExperimentConfig()


@pytest.fixture(scope="session")
def save_result():
    """Return a callable that persists a rendered experiment report."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
