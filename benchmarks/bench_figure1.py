"""Figure 1: thin pytest-benchmark wrapper over the ``figure1`` paper scenario."""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("figure1")


def test_figure1_max_group_size_curves(benchmark, experiment_config, save_result):
    panels = benchmark(SCENARIO.run, experiment_config)
    save_result("figure1", SCENARIO.render(panels))
    SCENARIO.check(panels, experiment_config)
