"""Figure 1: the maximum group size s_g versus the maximum frequency f."""

from repro.experiments.figure1 import run_figure1


def test_figure1_max_group_size_curves(benchmark, save_result):
    panels = benchmark(run_figure1)
    save_result("figure1", "\n\n".join(panel.render() for panel in panels.values()))

    for panel in panels.values():
        for retention, curve in panel.curves.items():
            # s_g decreases monotonically in f for every retention probability.
            assert all(a >= b for a, b in zip(curve, curve[1:]))
        # A larger p always gives a smaller (or equal) s_g at the same f.
        assert all(
            low >= high for low, high in zip(panel.curves[0.3], panel.curves[0.7])
        )

    # CENSUS's small frequencies blow s_g up: the f = 0.1 threshold dwarfs
    # anything in the ADULT panel, which is why CENSUS rarely violates.
    assert panels["CENSUS"].curves[0.5][0] > max(panels["ADULT"].curves[0.5])
