"""Figure 5: the relative-error cost of SPS versus plain UP on CENSUS."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.error_sweep import run_error_sweep


def test_figure5_census_relative_error(benchmark, experiment_config, save_result):
    config = experiment_config
    if config.census_size > 60_000:
        config = ExperimentConfig(
            census_size=60_000,
            census_sweep_sizes=(30_000, 60_000, 90_000),
            workload_queries=min(config.workload_queries, 300),
            runs=min(config.runs, 2),
            seed=config.seed,
        )
    sweeps = benchmark.pedantic(
        run_error_sweep,
        kwargs=dict(config=config, datasets=("CENSUS",), include_size_sweep=True),
        rounds=1,
        iterations=1,
    )
    census = sweeps["CENSUS"]
    save_result("figure5", "\n\n".join(sweep.render() for sweep in census.values()))

    # Section 6.3's headline: enforcing reconstruction privacy on CENSUS is
    # nearly free -- SPS tracks UP closely across every setting.
    for name, sweep in census.items():
        for up, sps in zip(sweep.up_errors, sweep.sps_errors):
            assert sps >= up - 0.03
            assert sps <= 1.6 * up + 0.03

    # Figure 5(d): the relative error falls as the data grows.
    size_sweep = census["|D|"]
    assert size_sweep.sps_errors[-1] < size_sweep.sps_errors[0]
    # Error falls with p for both methods.
    p_sweep = census["p"]
    assert p_sweep.up_errors[0] > p_sweep.up_errors[-1]
    assert p_sweep.sps_errors[0] > p_sweep.sps_errors[-1]
