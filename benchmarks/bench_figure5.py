"""Figure 5: thin pytest-benchmark wrapper over the ``figure5`` paper scenario.

The scenario trims the CENSUS sample and the workload internally unless a
paper-scale run was requested.
"""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("figure5")


def test_figure5_census_relative_error(benchmark, experiment_config, save_result):
    sweeps = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("figure5", SCENARIO.render(sweeps))
    SCENARIO.check(sweeps, experiment_config)
