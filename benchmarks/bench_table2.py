"""Table 2: thin pytest-benchmark wrapper over the ``table2`` paper scenario."""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("table2")


def test_table2_disclosure_indicator_grid(benchmark, experiment_config, save_result):
    result = benchmark(SCENARIO.run, experiment_config)
    save_result("table2", SCENARIO.render(result))
    SCENARIO.check(result, experiment_config)
