"""Table 2: the 2 (b/x)^2 disclosure-indicator grid."""

import pytest

from repro.experiments.table2 import TABLE2_ANSWERS, TABLE2_SCALES, run_table2


def test_table2_disclosure_indicator_grid(benchmark, save_result):
    result = benchmark(run_table2)
    save_result("table2", result.render())

    # Exact closed-form values from the paper's Table 2.
    assert result.grid[10.0][5000] == pytest.approx(0.000008)
    assert result.grid[20.0][200] == pytest.approx(0.02)
    assert result.grid[40.0][500] == pytest.approx(0.0128)
    assert result.grid[200.0][100] == pytest.approx(8.0)
    # Monotone in both directions.
    for b in TABLE2_SCALES:
        values = [result.grid[b][x] for x in TABLE2_ANSWERS]
        assert values == sorted(values)
