"""Ablation: reconstruction privacy versus the posterior/prior criteria.

Section 1 of the paper argues that l-diversity / t-closeness / beta-likeness
style criteria flag genuine statistical relationships as violations (hurting
utility), while reconstruction privacy only flags groups whose *personal*
reconstruction would be accurate.  This benchmark audits the same generalised
ADULT sample under every implemented criterion so the difference in coverage
is visible in one table.
"""

from repro.core.criterion import PrivacySpec
from repro.criteria.comparison import compare_criteria
from repro.dataset.adult import generate_adult
from repro.generalization.merging import generalize_table


def run_comparison(adult_size: int, seed: int):
    table = generalize_table(generate_adult(adult_size, seed=seed)).table
    spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
    return compare_criteria(table, spec, l=2, t=0.2, beta=1.0, k=3)


def test_criteria_comparison_on_adult(benchmark, experiment_config, save_result):
    comparison = benchmark.pedantic(
        run_comparison,
        args=(min(experiment_config.adult_size, 20_000), experiment_config.seed),
        rounds=1,
        iterations=1,
    )
    save_result("criteria_comparison", comparison.render())

    by_name = {report.criterion: report for report in comparison.reports}
    # ADULT's binary SA makes t-closeness and beta-likeness flag many groups:
    # strong income patterns exist in most education/occupation combinations.
    assert by_name["t-closeness"].group_failure_rate > 0
    assert by_name["beta-likeness"].group_failure_rate > 0
    # Reconstruction privacy flags a substantial share too (Figure 2), but the
    # *sets* differ: it keys on group size, not on distributional skew, so the
    # two verdicts cannot coincide on every group.
    assert 0 < comparison.reconstruction_group_rate < 1
