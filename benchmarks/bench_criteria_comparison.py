"""Ablation: thin pytest-benchmark wrapper over the ``criteria-comparison`` scenario.

Audits the same generalised ADULT sample under every implemented criterion so
the coverage difference between reconstruction privacy and the
posterior/prior criteria is visible in one table.
"""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("criteria-comparison")


def test_criteria_comparison_on_adult(benchmark, experiment_config, save_result):
    comparison = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("criteria_comparison", SCENARIO.render(comparison))
    SCENARIO.check(comparison, experiment_config)
