"""Ablation: SPS sampling versus the "just lower p" alternative (Section 5).

The paper argues that restoring reconstruction privacy by reducing the
retention probability p globally hurts utility far more than sampling only
the violating groups.  This benchmark quantifies that claim: it finds the
largest p' that makes the whole (generalised) ADULT sample reconstruction
private without sampling, then compares query error of (a) SPS at the original
p against (b) plain UP at that reduced p'.
"""

import numpy as np

from repro.analysis.utility import compare_up_and_sps
from repro.core.criterion import PrivacySpec
from repro.core.testing import audit_table
from repro.dataset.adult import generate_adult
from repro.generalization.merging import generalize_table
from repro.perturbation.uniform import perturb_table
from repro.queries.error import average_relative_error
from repro.queries.workload import WorkloadConfig, generate_workload


def _largest_private_retention(table, lam, delta, domain_size) -> float:
    """The largest p on a coarse grid for which no personal group violates."""
    for p in np.arange(0.95, 0.009, -0.05):
        spec = PrivacySpec(lam=lam, delta=delta, retention_probability=float(p), domain_size=domain_size)
        if audit_table(table, spec).is_private:
            return float(p)
    return 0.01


def run_ablation(adult_size: int, seed: int) -> dict:
    raw = generate_adult(adult_size, seed=seed)
    generalization = generalize_table(raw)
    table = generalization.table
    queries = generate_workload(
        raw, table, WorkloadConfig(n_queries=200), generalization=generalization, rng=seed
    )
    lam = delta = 0.3
    p = 0.5
    spec = PrivacySpec(lam=lam, delta=delta, retention_probability=p, domain_size=2)

    comparison = compare_up_and_sps(table, spec, queries, runs=2, rng=seed)
    reduced_p = _largest_private_retention(table, lam, delta, 2)
    reduced_errors = [
        average_relative_error(queries, table, perturb_table(table, reduced_p, rng=seed + i), reduced_p)
        for i in range(2)
    ]
    return {
        "sps_error": comparison.sps_error,
        "up_error": comparison.up_error,
        "reduced_p": reduced_p,
        "reduced_p_error": float(np.mean(reduced_errors)),
    }


def test_ablation_sampling_beats_lowering_p(benchmark, experiment_config, save_result):
    result = benchmark.pedantic(
        run_ablation, args=(min(experiment_config.adult_size, 20_000), experiment_config.seed),
        rounds=1, iterations=1,
    )
    save_result(
        "ablation_sampling",
        "SPS at p=0.5 vs global p reduction (ADULT)\n"
        f"UP error at p=0.5          : {result['up_error']:.4f}\n"
        f"SPS error at p=0.5         : {result['sps_error']:.4f}\n"
        f"largest private p          : {result['reduced_p']:.2f}\n"
        f"UP error at that reduced p : {result['reduced_p_error']:.4f}\n",
    )
    # Achieving privacy by lowering p globally needs a very noisy p ...
    assert result["reduced_p"] <= 0.2
    # ... and costs far more utility than SPS sampling at the original p.
    assert result["reduced_p_error"] > result["sps_error"]
