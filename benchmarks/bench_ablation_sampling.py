"""Ablation: thin pytest-benchmark wrapper over the ``ablation-sampling`` scenario.

Quantifies Section 5's claim that restoring privacy by lowering p globally
hurts utility far more than SPS's targeted sampling.
"""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("ablation-sampling")


def test_ablation_sampling_beats_lowering_p(benchmark, experiment_config, save_result):
    result = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("ablation_sampling", SCENARIO.render(result))
    SCENARIO.check(result, experiment_config)
