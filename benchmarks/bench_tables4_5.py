"""Tables 4 and 5: thin pytest-benchmark wrapper over the ``tables4-5`` scenario."""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("tables4-5")


def test_tables4_5_aggregation_impact(benchmark, experiment_config, save_result):
    impacts = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("tables4_5", SCENARIO.render(impacts))
    SCENARIO.check(impacts, experiment_config)
