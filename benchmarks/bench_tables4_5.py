"""Tables 4 and 5: impact of chi-square NA aggregation on ADULT and CENSUS."""

from repro.experiments.aggregation import run_aggregation_impact


def test_tables4_5_aggregation_impact(benchmark, experiment_config, save_result):
    impacts = benchmark.pedantic(
        run_aggregation_impact, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result(
        "tables4_5", "\n\n".join(impact.render() for impact in impacts.values())
    )

    adult = impacts["ADULT"]
    census = impacts["CENSUS"]

    # Table 4 shape: every ADULT domain shrinks or stays equal, the group count
    # collapses by an order of magnitude, and the average group size grows.
    assert adult.domain_sizes_after["Education"] < adult.domain_sizes_before["Education"]
    assert adult.domain_sizes_after["Occupation"] < adult.domain_sizes_before["Occupation"]
    assert adult.n_groups_after < adult.n_groups_before / 5
    assert adult.average_group_size_after > adult.average_group_size_before

    # Table 5 shape: Age becomes uninformative (77 -> 1), the other CENSUS
    # attributes keep their domains, and the group count equals roughly the
    # cross product of the surviving domains.
    assert census.domain_sizes_after["Age"] == 1
    assert census.domain_sizes_after["Education"] == census.domain_sizes_before["Education"]
    assert census.domain_sizes_after["Marital"] == census.domain_sizes_before["Marital"]
    assert census.domain_sizes_after["Race"] == census.domain_sizes_before["Race"]
    assert census.n_groups_after < census.n_groups_before / 10
