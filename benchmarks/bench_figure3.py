"""Figure 3: the relative-error cost of SPS versus plain UP on ADULT."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.error_sweep import run_error_sweep


def test_figure3_adult_relative_error(benchmark, experiment_config, save_result):
    # The error sweep is the most expensive experiment; trim the ADULT sample
    # and the workload unless a paper-scale run was requested.
    config = experiment_config
    if config.adult_size > 20_000:
        config = ExperimentConfig(
            adult_size=20_000,
            workload_queries=min(config.workload_queries, 400),
            runs=min(config.runs, 3),
            seed=config.seed,
        )
    sweeps = benchmark.pedantic(
        run_error_sweep,
        kwargs=dict(config=config, datasets=("ADULT",), include_size_sweep=False),
        rounds=1,
        iterations=1,
    )
    adult = sweeps["ADULT"]
    save_result("figure3", "\n\n".join(sweep.render() for sweep in adult.values()))

    p_sweep = adult["p"]
    # Error falls as the retention probability grows, for both UP and SPS.
    assert p_sweep.up_errors[0] > p_sweep.up_errors[-1]
    assert p_sweep.sps_errors[0] > p_sweep.sps_errors[-1]
    # SPS never beats UP by more than Monte-Carlo noise, and its extra cost on
    # the binary-SA ADULT stays within the roughly +50 % the paper reports
    # (we allow up to +150 % because the scaled-down sample is noisier).
    for sweep in adult.values():
        for up, sps in zip(sweep.up_errors, sweep.sps_errors):
            assert sps >= up - 0.03
            assert sps <= 2.5 * up + 0.05
