"""Figure 3: thin pytest-benchmark wrapper over the ``figure3`` paper scenario.

The scenario trims the ADULT sample and the workload internally unless a
paper-scale run was requested (the error sweep is the most expensive
experiment).
"""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("figure3")


def test_figure3_adult_relative_error(benchmark, experiment_config, save_result):
    sweeps = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("figure3", SCENARIO.render(sweeps))
    SCENARIO.check(sweeps, experiment_config)
