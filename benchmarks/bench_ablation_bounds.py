"""Ablation: thin pytest-benchmark wrapper over the ``ablation-bounds`` scenario.

DESIGN.md calls out the Chernoff-vs-Chebyshev/Markov decision; the scenario
measures the violation rate of the same ADULT sample under all three bounds.
"""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("ablation-bounds")


def test_ablation_bound_choice(benchmark, experiment_config, save_result):
    rates = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("ablation_bounds", SCENARIO.render(rates))
    SCENARIO.check(rates, experiment_config)
