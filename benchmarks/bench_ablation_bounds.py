"""Ablation: how the choice of tail bound changes the privacy test.

DESIGN.md calls out the Chernoff-vs-Chebyshev/Markov decision.  A looser bound
overstates the adversary's uncertainty and therefore under-detects violations;
this benchmark measures the violation rate of the same ADULT sample under all
three bounds (the Chernoff-based Corollary 4 test, and per-group tests built
on the Chebyshev and Markov bounds via smallest_error_bound).
"""

from repro.core.criterion import PrivacySpec, smallest_error_bound
from repro.core.testing import audit_table
from repro.dataset.adult import generate_adult
from repro.dataset.groups import personal_groups
from repro.generalization.merging import generalize_table


def violation_rates_by_bound(adult_size: int, seed: int) -> dict[str, float]:
    table = generalize_table(generate_adult(adult_size, seed=seed)).table
    spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)
    groups = list(personal_groups(table))

    rates = {}
    chernoff_audit = audit_table(table, spec)
    rates["chernoff"] = chernoff_audit.group_violation_rate
    for method in ("chebyshev", "markov"):
        violations = sum(
            1
            for group in groups
            if smallest_error_bound(spec, group.size, group.max_frequency, method=method) < spec.delta
        )
        rates[method] = violations / len(groups)
    return rates


def test_ablation_bound_choice(benchmark, experiment_config, save_result):
    rates = benchmark.pedantic(
        violation_rates_by_bound,
        args=(min(experiment_config.adult_size, 20_000), experiment_config.seed),
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_bounds",
        "Group violation rate on ADULT by tail bound\n"
        + "\n".join(f"{name:10s}: {rate:.3f}" for name, rate in rates.items()),
    )
    # Markov is far too loose to certify anything, so it flags (essentially)
    # no violations.  Chebyshev uses the exact variance and can flag more
    # groups than Chernoff at moderate deviations, while Chernoff's
    # exponential tail dominates for large ones -- the paper standardises on
    # Chernoff because it is the classical bound for Poisson trials.
    assert rates["markov"] <= min(rates["chernoff"], rates["chebyshev"]) + 1e-9
    assert rates["chernoff"] > 0
