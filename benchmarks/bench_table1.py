"""Table 1: thin pytest-benchmark wrapper over the ``table1`` paper scenario."""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("table1")


def test_table1_dp_disclosure(benchmark, experiment_config, save_result):
    result = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("table1", SCENARIO.render(result))
    SCENARIO.check(result, experiment_config)
