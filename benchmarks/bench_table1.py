"""Table 1: disclosure of the ADULT rule through two Laplace-noisy counts.

Regenerates the mean Conf' and relative-error rows of Table 1 and checks the
paper's qualitative shape: the rule is recovered at epsilon = 0.5 but not
usefully at epsilon = 0.01.
"""

from repro.experiments.table1 import run_table1


def test_table1_dp_disclosure(benchmark, experiment_config, save_result):
    result = benchmark.pedantic(run_table1, args=(experiment_config,), rounds=1, iterations=1)
    save_result("table1", result.render())

    assert result.true_confidence > 0.8
    low_privacy = result.per_epsilon[0.5]
    high_privacy = result.per_epsilon[0.01]
    # Shape of Table 1: accurate answers and accurate Conf' at eps = 0.5 ...
    assert low_privacy.confidence_gap < 0.05
    assert low_privacy.error_q1_mean < 0.1
    # ... but noisy, unusable answers at eps = 0.01.
    assert high_privacy.error_q1_mean > 5 * low_privacy.error_q1_mean
