"""Micro-benchmarks of the core operations (throughput, not paper figures).

The operation set is defined once, in :func:`repro.bench.paper.core_op_callables`
(the ``core-ops`` scenario of ``repro-bench run --suite paper``); this wrapper
times each operation individually through pytest-benchmark so regressions in
the hot paths (perturbation, group indexing, auditing, SPS publishing, MLE
reconstruction) are attributable to one building block.
"""

import pytest

from repro.bench.paper import CORE_OP_NAMES, core_op_callables, paper_scenario

SCENARIO = paper_scenario("core-ops")


@pytest.fixture(scope="module")
def core_ops(experiment_config):
    return core_op_callables(experiment_config)


@pytest.mark.parametrize(
    "op_name", [name for name in CORE_OP_NAMES if name != "adult-generation"]
)
def test_bench_core_op(benchmark, core_ops, op_name):
    benchmark(core_ops[op_name])


def test_bench_adult_generation(benchmark, core_ops):
    # Data generation is slower than the other ops; cap the rounds.
    benchmark.pedantic(core_ops["adult-generation"], rounds=2, iterations=1)


def test_core_ops_scenario(experiment_config, save_result):
    result = SCENARIO.run(experiment_config)
    save_result("core_ops", SCENARIO.render(result))
    SCENARIO.check(result, experiment_config)
