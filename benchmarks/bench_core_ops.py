"""Micro-benchmarks of the core operations (throughput, not paper figures).

These time the individual building blocks so regressions in the hot paths
(perturbation, group indexing, auditing, SPS publishing, MLE reconstruction)
are visible, mirroring the paper's complexity claim that SPS is a sort plus a
single scan.
"""

import numpy as np
import pytest

from repro.core.criterion import PrivacySpec
from repro.core.sps import sps_publish
from repro.core.testing import audit_table
from repro.dataset.adult import generate_adult
from repro.dataset.groups import personal_groups
from repro.perturbation.uniform import UniformPerturbation
from repro.reconstruction.mle import mle_frequencies


@pytest.fixture(scope="module")
def adult_20k():
    return generate_adult(20_000, seed=0)


@pytest.fixture(scope="module")
def adult_spec():
    return PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5, domain_size=2)


def test_bench_uniform_perturbation_throughput(benchmark):
    operator = UniformPerturbation(0.5, 50)
    codes = np.random.default_rng(0).integers(0, 50, size=200_000)
    benchmark(operator.perturb_codes, codes, 1)


def test_bench_group_indexing(benchmark, adult_20k):
    benchmark(personal_groups, adult_20k)


def test_bench_privacy_audit(benchmark, adult_20k, adult_spec):
    groups = personal_groups(adult_20k)
    benchmark(audit_table, adult_20k, adult_spec, groups)


def test_bench_sps_publish(benchmark, adult_20k, adult_spec):
    groups = personal_groups(adult_20k)
    benchmark(sps_publish, adult_20k, adult_spec, 0, groups)


def test_bench_mle_reconstruction(benchmark):
    counts = np.random.default_rng(1).integers(100, 10_000, size=50).astype(float)
    benchmark(mle_frequencies, counts, 0.5)


def test_bench_adult_generation(benchmark):
    benchmark.pedantic(generate_adult, args=(20_000,), kwargs=dict(seed=1), rounds=2, iterations=1)
