"""Figure 2: how often reconstruction privacy is violated on ADULT under plain UP."""

from repro.experiments.violation_sweep import run_violation_sweep


def test_figure2_adult_violation_rates(benchmark, experiment_config, save_result):
    sweeps = benchmark.pedantic(
        run_violation_sweep,
        kwargs=dict(config=experiment_config, datasets=("ADULT",), include_size_sweep=False),
        rounds=1,
        iterations=1,
    )
    adult = sweeps["ADULT"]
    save_result("figure2", "\n\n".join(sweep.render() for sweep in adult.values()))

    defaults = adult["p"]
    default_index = defaults.values.index(experiment_config.retention)
    # The headline of Section 6.2: at the default setting the majority of
    # records sit in violating groups.
    assert defaults.record_rates[default_index] > 0.5
    # Coverage always dominates the group rate.
    for sweep in adult.values():
        for vg, vr in zip(sweep.group_rates, sweep.record_rates):
            assert vr >= vg - 1e-9
    # Violations grow with lambda and delta (Equation 9 shrinks s_g).
    assert adult["lambda"].group_rates[-1] >= adult["lambda"].group_rates[0]
    assert adult["delta"].group_rates[-1] >= adult["delta"].group_rates[0]
    # Violations grow with p (more retention = more accurate reconstruction).
    assert adult["p"].group_rates[-1] >= adult["p"].group_rates[0]
