"""Figure 2: thin pytest-benchmark wrapper over the ``figure2`` paper scenario."""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("figure2")


def test_figure2_adult_violation_rates(benchmark, experiment_config, save_result):
    sweeps = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("figure2", SCENARIO.render(sweeps))
    SCENARIO.check(sweeps, experiment_config)
