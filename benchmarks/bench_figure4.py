"""Figure 4: thin pytest-benchmark wrapper over the ``figure4`` paper scenario."""

from repro.bench.paper import paper_scenario

SCENARIO = paper_scenario("figure4")


def test_figure4_census_violation_rates(benchmark, experiment_config, save_result):
    sweeps = benchmark.pedantic(
        SCENARIO.run, args=(experiment_config,), rounds=1, iterations=1
    )
    save_result("figure4", SCENARIO.render(sweeps))
    SCENARIO.check(sweeps, experiment_config)
