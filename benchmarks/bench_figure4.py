"""Figure 4: how often reconstruction privacy is violated on CENSUS under plain UP."""

from repro.experiments.violation_sweep import run_violation_sweep


def test_figure4_census_violation_rates(benchmark, experiment_config, save_result):
    sweeps = benchmark.pedantic(
        run_violation_sweep,
        kwargs=dict(config=experiment_config, datasets=("CENSUS",), include_size_sweep=True),
        rounds=1,
        iterations=1,
    )
    census = sweeps["CENSUS"]
    save_result("figure4", "\n\n".join(sweep.render() for sweep in census.values()))

    # CENSUS's many balanced SA values keep the group violation rate far below
    # ADULT's, while each violating group is large, so coverage exceeds it.
    for sweep in census.values():
        for vg, vr in zip(sweep.group_rates, sweep.record_rates):
            assert vr >= vg - 1e-9
        assert max(sweep.group_rates) < 0.6

    # Figure 4(d): more data means more (and larger) violating groups.
    size_sweep = census["|D|"]
    assert size_sweep.record_rates[-1] >= size_sweep.record_rates[0]
