#!/usr/bin/env python3
"""Validate the documentation's intra-repo links and ``repro.*`` references.

Two classes of rot are checked (CI runs this on every push):

1. **Markdown links** — every ``[text](target)`` whose target is not an
   absolute URL must resolve to an existing file or directory, relative to
   the markdown file that contains it (an optional ``#fragment`` is ignored).
2. **Module references** — every backticked dotted name starting with
   ``repro.`` (e.g. ```repro.stream.engine```, ```repro.publish```) must
   import: either as a module, or as an attribute of its parent module.
   Call-shaped references like ``repro.publish()`` are normalised first.

Usage::

    python scripts/check_doc_links.py README.md docs/*.md

Exit status 1 if any link or reference is broken, with one ``file:line``
diagnostic per problem.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_MODREF = re.compile(r"`+([A-Za-z_][\w.]*(?:\.[\w]+)+)(?:\(\))?`+")
_FENCE = re.compile(r"^```.*?^```\s*$", re.MULTILINE | re.DOTALL)


def check_link(target: str, base: Path) -> str | None:
    """Return a problem description for one markdown link target, or ``None``."""
    if target.startswith(("http://", "https://", "mailto:")):
        return None
    path_part = target.split("#", 1)[0]
    if not path_part:  # pure in-page anchor
        return None
    resolved = (base.parent / path_part).resolve()
    if not resolved.exists():
        return f"broken link: ({target}) -> {resolved}"
    return None


def check_module_reference(name: str) -> str | None:
    """Return a problem description for one ``repro.*`` dotted name, or ``None``.

    Resolves the longest importable module prefix, then walks the remaining
    segments as attributes — so ``repro.stream``, ``repro.publish`` and
    ``repro.pipeline.PublishStrategy.chunk_publisher`` all validate.
    """
    parts = name.split(".")
    module = None
    consumed = 0
    for end in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:end]))
            consumed = end
            break
        except ImportError:
            continue
    if module is None:
        return f"unresolvable reference: {name} (cannot import any prefix)"
    obj = module
    path = ".".join(parts[:consumed])
    for attribute in parts[consumed:]:
        if not hasattr(obj, attribute):
            return f"unresolvable reference: {name} ({path} has no attribute {attribute!r})"
        obj = getattr(obj, attribute)
        path += "." + attribute
    return None


def check_file(path: Path) -> list[str]:
    """All problems found in one markdown file, as ``file:line: message`` strings."""
    text = path.read_text()
    # Blank out fenced code blocks line-preservingly: links/identifiers inside
    # code samples are exercised by run_doc_snippets.py, not by this checker.
    prose = _FENCE.sub(lambda match: "\n" * match.group(0).count("\n"), text)
    problems: list[str] = []
    for lineno, line in enumerate(prose.splitlines(), start=1):
        for match in _LINK.finditer(line):
            problem = check_link(match.group(1), path)
            if problem:
                problems.append(f"{path}:{lineno}: {problem}")
        for match in _MODREF.finditer(line):
            name = match.group(1)
            if not name.startswith("repro."):
                continue
            problem = check_module_reference(name)
            if problem:
                problems.append(f"{path}:{lineno}: {problem}")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems: list[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        problems.extend(check_file(path))
        checked += 1
    for problem in problems:
        print(problem)
    print(f"\n{checked} files checked, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
