#!/usr/bin/env python3
"""The CI perf-gate: run the tiny bench matrices and fail on regressions.

Four checks, in order (CI's ``perf-gate`` job runs this on every push):

1. **Schema** — every freshly-run tiny report validates against
   :func:`repro.bench.schema.validate_report` (also run on write, so this
   guards the validator itself staying importable and strict).
2. **Determinism** — the core suite is run twice; scenario names and every
   operation count must be identical (wall-clock fields are free to move).
3. **Byte identity** — every ``stream``, ``parallel`` and ``delta``
   scenario must report ``ops.byte_identical == true`` (``delta`` scenarios
   additionally ``ops.audits_agree == true``), and scenarios differing only
   in their worker count must publish identical record/group counts.
   ``serve`` audit scenarios must report ``byte_identical`` (cached vs
   uncached vs post-invalidation responses), ``invalidation_observed`` and a
   response-cache speedup of at least 5x; ``serve`` backpressure scenarios
   must shed load (some 429s, zero hangs/unexpected statuses, every
   rejection carrying ``Retry-After``).
4. **Throughput** — each scenario's best-of-repeats seconds is compared
   against the committed baseline of the same name
   (``benchmarks/baselines/BENCH_<suite>.json``); slower by more than the
   tolerance fails.  The default tolerance is 0.25 (25 % — same-machine
   noise); CI runners are a different machine entirely, so the workflow
   sets ``BENCH_REGRESSION_TOLERANCE`` higher — the gate then catches
   order-of-magnitude blowups, not micro-noise.  Scenarios missing from a
   baseline are reported but never fail (new scenarios land before their
   baselines), and scenarios whose baseline runs under
   ``BENCH_REGRESSION_MIN_SECONDS`` (default 50 ms) are never gated —
   relative jitter on a sub-millisecond scenario is pure scheduler noise.

Usage::

    python scripts/check_bench_regression.py [--suites core service stream parallel delta serve]
        [--baseline-dir benchmarks/baselines] [--output-dir bench-gate]
        [--tolerance 0.25] [--skip-throughput]

Exit status 1 with one diagnostic per line if any check fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.runner import run_suite, write_report  # noqa: E402
from repro.bench.schema import validate_report  # noqa: E402
from repro.bench.timing import TimingSpec  # noqa: E402

#: Suites the gate runs by default (``paper`` is minutes-scale, not gated).
DEFAULT_SUITES = ("core", "service", "stream", "parallel", "delta", "serve")

#: Minimum response-cache speedup a serve audit scenario must demonstrate.
#: Cached hits are sub-millisecond dictionary lookups while uncached audits
#: recompute the reconstruction attack, so even a loaded 1-core CI runner
#: clears this by an order of magnitude; falling below it means the cache
#: stopped being consulted.
SERVE_MIN_CACHE_SPEEDUP = 5.0

#: Default throughput tolerance: fail when best-of-repeats is this fraction
#: slower than the committed baseline.
DEFAULT_TOLERANCE = 0.25

#: Scenarios whose baseline best is below this are noted, never gated — a
#: sub-millisecond scenario's relative jitter is pure scheduler noise, and a
#: real regression on one is invisible anyway.  Override with the
#: BENCH_REGRESSION_MIN_SECONDS env var (or --min-seconds).
DEFAULT_MIN_SECONDS = 0.05


def _workers_invariant_key(name: str) -> str | None:
    """Collapse a scenario name's ``/wN`` worker suffix (``None`` if absent)."""
    stem, sep, tail = name.rpartition("/w")
    if not sep or not tail.isdigit():
        return None
    return stem


def check_identity(report: dict) -> list[str]:
    """Byte-identity and cross-worker-count invariance problems of one report."""
    problems: list[str] = []
    suite = report.get("suite")
    by_invariant: dict[str, dict] = {}
    for entry in report.get("scenarios", []):
        name = entry.get("name", "?")
        ops = entry.get("ops", {})
        if suite in ("stream", "parallel", "delta") and ops.get("byte_identical") is not True:
            problems.append(f"{suite}:{name}: byte_identical is {ops.get('byte_identical')!r}")
        if suite == "delta" and ops.get("audits_agree") is not True:
            problems.append(f"{suite}:{name}: audits_agree is {ops.get('audits_agree')!r}")
        key = _workers_invariant_key(name)
        if key is None:
            continue
        counts = {
            field: ops[field]
            for field in ("published_records", "n_groups", "rows")
            if field in ops
        }
        reference = by_invariant.setdefault(key, {"name": name, "counts": counts})
        if reference["counts"] != counts:
            problems.append(
                f"{suite}:{name}: op counts differ from {reference['name']} "
                f"({counts} != {reference['counts']}); output depends on the worker count"
            )
    return problems


def check_serve(report: dict) -> tuple[list[str], list[str]]:
    """(problems, notes) enforcing the serve suite's load-benchmark verdicts."""
    problems: list[str] = []
    notes: list[str] = []
    for entry in report.get("scenarios", []):
        name = entry.get("name", "?")
        ops = entry.get("ops", {})
        if entry.get("strategy") == "audit":
            if ops.get("byte_identical") is not True:
                problems.append(
                    f"serve:{name}: byte_identical is {ops.get('byte_identical')!r} "
                    "(cached, uncached and post-invalidation responses diverged)"
                )
            if ops.get("invalidation_observed") is not True:
                problems.append(
                    f"serve:{name}: invalidation_observed is "
                    f"{ops.get('invalidation_observed')!r} (re-register served a stale hit)"
                )
            speedup = ops.get("cache_speedup")
            if not isinstance(speedup, (int, float)) or speedup < SERVE_MIN_CACHE_SPEEDUP:
                problems.append(
                    f"serve:{name}: cache_speedup {speedup!r} is below the "
                    f"{SERVE_MIN_CACHE_SPEEDUP:g}x floor"
                )
        elif entry.get("strategy") == "backpressure":
            if ops.get("shed_load") is not True:
                problems.append(
                    f"serve:{name}: shed_load is {ops.get('shed_load')!r} "
                    f"(completed={ops.get('completed')!r} rejected={ops.get('rejected')!r} "
                    f"unexpected={ops.get('unexpected_statuses')!r})"
                )
            if ops.get("all_rejections_have_retry_after") is not True:
                problems.append(
                    f"serve:{name}: a 429 response was missing its Retry-After header"
                )
    cpu_count = report.get("environment", {}).get("cpu_count")
    if cpu_count == 1:
        notes.append(
            "serve: environment.cpu_count is 1 — absolute throughput/latency numbers "
            "come from a single-core container; trust the ratios (cache_speedup, "
            "hit ratio, shed_load), not the rps"
        )
    return problems, notes


def check_determinism(first: dict, second: dict) -> list[str]:
    """Problems where two same-seed runs disagree on anything but wall-clock."""
    problems: list[str] = []
    names_a = [s.get("name") for s in first.get("scenarios", [])]
    names_b = [s.get("name") for s in second.get("scenarios", [])]
    if names_a != names_b:
        return [f"scenario sets differ between same-seed runs: {names_a} != {names_b}"]
    for a, b in zip(first.get("scenarios", []), second.get("scenarios", [])):
        ops_a = {k: v for k, v in a.get("ops", {}).items() if not isinstance(v, float)}
        ops_b = {k: v for k, v in b.get("ops", {}).items() if not isinstance(v, float)}
        if ops_a != ops_b:
            problems.append(
                f"{a.get('name')}: op counts differ between same-seed runs "
                f"({ops_a} != {ops_b})"
            )
    return problems


def compare_throughput(
    candidate: dict,
    baseline: dict,
    tolerance: float,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> tuple[list[str], list[str]]:
    """(problems, notes) from comparing best-of-repeats seconds per scenario name."""
    problems: list[str] = []
    notes: list[str] = []
    suite = candidate.get("suite", "?")
    baseline_by_name = {
        s.get("name"): s for s in baseline.get("scenarios", [])
    }
    for entry in candidate.get("scenarios", []):
        name = entry.get("name", "?")
        reference = baseline_by_name.get(name)
        if reference is None:
            notes.append(f"{suite}:{name}: no committed baseline (skipped)")
            continue
        best = float(entry["seconds"]["best"])
        reference_best = float(reference["seconds"]["best"])
        if reference_best <= 0:
            continue
        if reference_best < min_seconds:
            notes.append(
                f"{suite}:{name}: baseline {reference_best:.4f}s is below the "
                f"{min_seconds:.3f}s gating floor (relative jitter is noise; skipped)"
            )
            continue
        slowdown = best / reference_best - 1.0
        if slowdown > tolerance:
            problems.append(
                f"{suite}:{name}: {best:.4f}s vs baseline {reference_best:.4f}s "
                f"(+{slowdown:.0%} > {tolerance:.0%} tolerance)"
            )
    return problems, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suites", nargs="+", default=list(DEFAULT_SUITES), help="suites to gate")
    parser.add_argument(
        "--baseline-dir", default=str(REPO_ROOT / "benchmarks" / "baselines"),
        help="directory holding the committed tiny BENCH_<suite>.json baselines",
    )
    parser.add_argument(
        "--output-dir", default="bench-gate",
        help="where the freshly-run tiny reports are written (uploaded as CI artifacts)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="max allowed throughput slowdown vs the baseline "
        f"(default {DEFAULT_TOLERANCE}, or the BENCH_REGRESSION_TOLERANCE env var)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=None,
        help="baseline best below this is never gated, only noted "
        f"(default {DEFAULT_MIN_SECONDS}, or BENCH_REGRESSION_MIN_SECONDS)",
    )
    parser.add_argument(
        "--skip-throughput", action="store_true",
        help="run schema/determinism/identity checks only (no wall-clock comparison)",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(os.environ.get("BENCH_REGRESSION_TOLERANCE", DEFAULT_TOLERANCE))
    min_seconds = args.min_seconds
    if min_seconds is None:
        min_seconds = float(
            os.environ.get("BENCH_REGRESSION_MIN_SECONDS", DEFAULT_MIN_SECONDS)
        )

    problems: list[str] = []
    for suite in args.suites:
        print(f"== {suite}: running tiny matrix")
        report = run_suite(suite, tiny=True, include_micro=False)
        write_report(report, args.output_dir)
        try:
            validate_report(report)
        except Exception as exc:  # SchemaError carries one problem per line
            problems.extend(f"{suite}: {line}" for line in str(exc).splitlines())
            continue
        problems.extend(check_identity(report))

        if suite == "serve":
            serve_problems, serve_notes = check_serve(report)
            problems.extend(serve_problems)
            for note in serve_notes:
                print(f"   {note}")

        if suite == "core":
            print("== core: re-running for the determinism check")
            second = run_suite(
                suite, tiny=True, include_micro=False, timing=TimingSpec(warmup=0, repeats=1)
            )
            # Only op counts are compared; the first run's timing spec
            # differs, which is exactly the point.
            problems.extend(check_determinism(report, second))

        if not args.skip_throughput:
            baseline_path = Path(args.baseline_dir) / f"BENCH_{suite}.json"
            if not baseline_path.exists():
                print(f"   no baseline at {baseline_path}, throughput not gated")
                continue
            baseline = json.loads(baseline_path.read_text())
            suite_problems, notes = compare_throughput(
                report, baseline, tolerance, min_seconds
            )
            problems.extend(suite_problems)
            for note in notes:
                print(f"   {note}")

    if problems:
        print(f"\nperf-gate FAILED ({len(problems)} problem(s), tolerance {tolerance:.0%}):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nperf-gate ok (tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
