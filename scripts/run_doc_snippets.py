#!/usr/bin/env python3
"""Run every ```python code block of the given markdown files (+ doctests).

The docs promise copy-pasteable snippets; this sweep (wired into CI's
quickstart smoke step) keeps that promise honest.  Each fenced block whose
info string is exactly ``python`` runs in its own interpreter with the repo's
``src/`` on ``PYTHONPATH``; a non-zero exit fails the sweep and prints the
offending file, block number and output.  Blocks marked ``python no-run``
(illustrative fragments) and non-python blocks are skipped.

``--doctest-module NAME`` (repeatable) additionally executes the named
module's docstring examples through :mod:`doctest` in a subprocess, so the
runnable examples in API docstrings are held to the same standard as the
markdown snippets.

Usage::

    python scripts/run_doc_snippets.py README.md docs/*.md \\
        --doctest-module repro.stream.engine --doctest-module repro.dataset.loaders
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_FENCE = re.compile(r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(text: str) -> list[str]:
    """The bodies of all blocks whose info string is exactly ``python``."""
    return [
        match.group("body")
        for match in _FENCE.finditer(text)
        if match.group("info").strip() == "python"
    ]


def run_block(source: str, label: str) -> bool:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    result = subprocess.run(
        [sys.executable, "-"],
        input=source,
        text=True,
        capture_output=True,
        cwd=REPO_ROOT,
        env=env,
    )
    if result.returncode != 0:
        print(f"FAIL {label}")
        print("--- snippet ---")
        print(source)
        print("--- stderr ---")
        print(result.stderr)
        return False
    print(f"ok   {label}")
    return True


_DOCTEST_DRIVER = """\
import doctest, importlib, sys
module = importlib.import_module(sys.argv[1])
result = doctest.testmod(module, verbose=False)
print(f"{result.attempted} examples, {result.failed} failures")
if result.attempted == 0:
    # A guarded module with zero examples means the examples were deleted —
    # the sweep would otherwise stay green while checking nothing.
    print("no doctest examples found; this module is expected to carry some")
    sys.exit(1)
sys.exit(1 if result.failed else 0)
"""


def run_doctests(module: str) -> bool:
    """Execute ``module``'s docstring examples via doctest in a subprocess."""
    return run_block(
        _DOCTEST_DRIVER.replace("sys.argv[1]", repr(module)),
        f"doctest {module}",
    )


def main(argv: list[str]) -> int:
    files: list[str] = []
    doctest_modules: list[str] = []
    iterator = iter(argv)
    for arg in iterator:
        if arg == "--doctest-module":
            try:
                doctest_modules.append(next(iterator))
            except StopIteration:
                print("--doctest-module requires a module name")
                return 2
        else:
            files.append(arg)
    if not files and not doctest_modules:
        print(__doc__)
        return 2
    failures = 0
    total = 0
    for name in files:
        path = Path(name)
        blocks = python_blocks(path.read_text())
        if not blocks:
            print(f"----  {path}: no python blocks")
            continue
        for i, block in enumerate(blocks, start=1):
            total += 1
            if not run_block(block, f"{path} [block {i}/{len(blocks)}]"):
                failures += 1
    for module in doctest_modules:
        total += 1
        if not run_doctests(module):
            failures += 1
    print(f"\n{total - failures}/{total} snippets passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
