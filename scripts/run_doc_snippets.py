#!/usr/bin/env python3
"""Run every ```python code block of the given markdown files.

The docs promise copy-pasteable snippets; this sweep (wired into CI's
quickstart smoke step) keeps that promise honest.  Each fenced block whose
info string is exactly ``python`` runs in its own interpreter with the repo's
``src/`` on ``PYTHONPATH``; a non-zero exit fails the sweep and prints the
offending file, block number and output.  Blocks marked ``python no-run``
(illustrative fragments) and non-python blocks are skipped.

Usage::

    python scripts/run_doc_snippets.py README.md docs/*.md
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_FENCE = re.compile(r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(text: str) -> list[str]:
    """The bodies of all blocks whose info string is exactly ``python``."""
    return [
        match.group("body")
        for match in _FENCE.finditer(text)
        if match.group("info").strip() == "python"
    ]


def run_block(source: str, label: str) -> bool:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    result = subprocess.run(
        [sys.executable, "-"],
        input=source,
        text=True,
        capture_output=True,
        cwd=REPO_ROOT,
        env=env,
    )
    if result.returncode != 0:
        print(f"FAIL {label}")
        print("--- snippet ---")
        print(source)
        print("--- stderr ---")
        print(result.stderr)
        return False
    print(f"ok   {label}")
    return True


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    failures = 0
    total = 0
    for name in argv:
        path = Path(name)
        blocks = python_blocks(path.read_text())
        if not blocks:
            print(f"----  {path}: no python blocks")
            continue
        for i, block in enumerate(blocks, start=1):
            total += 1
            if not run_block(block, f"{path} [block {i}/{len(blocks)}]"):
                failures += 1
    print(f"\n{total - failures}/{total} snippets passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
