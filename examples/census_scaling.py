"""Publishing a large CENSUS-like table: violations, cost, and scaling.

Walks the CENSUS scenario of Section 6.3: generalise the public attributes
(Age turns out to carry no information about Occupation and collapses to a
single value), audit increasingly large samples, publish with SPS, and measure
the utility cost against plain uniform perturbation on a count-query workload.

Run with::

    python examples/census_scaling.py [max_size]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.analysis.utility import compare_up_and_sps
from repro.core.criterion import PrivacySpec
from repro.core.testing import audit_table
from repro.dataset.census import generate_census
from repro.generalization.merging import generalize_table
from repro.queries.workload import WorkloadConfig, generate_workload
from repro.utils.textplot import render_table


def main(max_size: int = 120_000) -> None:
    sizes = [max_size // 4, max_size // 2, max_size]
    rows = []
    for size in sizes:
        raw = generate_census(size, seed=20150323)
        generalization = generalize_table(raw)
        table = generalization.table
        spec = PrivacySpec(lam=0.3, delta=0.3, retention_probability=0.5,
                           domain_size=table.schema.sensitive_domain_size)
        audit = audit_table(table, spec)
        queries = generate_workload(
            raw, table, WorkloadConfig(n_queries=200), generalization=generalization, rng=0
        )
        comparison = compare_up_and_sps(table, spec, queries, runs=2, rng=1)
        rows.append(
            [
                size,
                f"{audit.group_violation_rate:.1%}",
                f"{audit.record_violation_rate:.1%}",
                f"{comparison.up_error:.3f}",
                f"{comparison.sps_error:.3f}",
                f"{comparison.relative_increase:+.1%}",
            ]
        )
    age_domain = generalization.merge_for("Age").generalized_domain_size
    print(f"after generalisation the Age attribute collapses to {age_domain} value(s); "
          "the remaining attributes keep their domains\n")
    print(
        render_table(
            ["|D|", "v_g", "v_r", "UP error", "SPS error", "SPS cost"],
            rows,
            title="CENSUS: violations of (0.3, 0.3)-reconstruction privacy and the cost of enforcing it",
        )
    )
    print(
        "\nReading: violations grow with the data size (more groups exceed s_g), but the"
        "\nextra error SPS adds over plain UP stays small and shrinks as |D| grows --"
        "\nthe paper's Figure 4/Figure 5 behaviour."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    main(size)
