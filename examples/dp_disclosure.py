"""Example 1 / Section 2 of the paper: differentially private answers can
still disclose a sensitive rule through non-independent reasoning.

The adversary issues two noisy count queries about Bob's public profile
(Prof-school, Prof-specialty, White, Male) and gauges the chance Bob earns
more than 50K from their ratio.  At a low privacy level (epsilon = 0.5) the
ratio pins the rule's 83.8 % confidence to within a percent, exactly the
disclosure Table 1 demonstrates; data perturbation with reconstruction privacy
is the paper's answer to this.

Run with::

    python examples/dp_disclosure.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.dataset.adult import EXAMPLE_GROUP, generate_adult
from repro.dp.attack import disclosure_occurs, ratio_error_indicator, run_ratio_attack
from repro.dp.mechanisms import LaplaceMechanism
from repro.utils.textplot import render_table


def main() -> None:
    table = generate_adult(45_222, seed=20150323)
    target = ", ".join(f"{k}={v}" for k, v in EXAMPLE_GROUP.items())
    true_x = table.count(EXAMPLE_GROUP)
    true_y = table.count(EXAMPLE_GROUP, ">50K")
    print(f"target profile: {target}")
    print(f"true counts: |Q1| = {true_x}, |Q2| = {true_y}, confidence = {true_y / true_x:.4f}\n")

    rows = []
    for epsilon in (0.01, 0.1, 0.5):
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=2.0)
        result = run_ratio_attack(table, EXAMPLE_GROUP, ">50K", mechanism, trials=10, rng=1)
        indicator = ratio_error_indicator(mechanism.scale, true_x)
        rows.append(
            [
                epsilon,
                mechanism.scale,
                f"{result.confidence_mean:.4f} +- {result.confidence_se:.4f}",
                f"{result.error_q1_mean:.4f}",
                f"{result.error_q2_mean:.4f}",
                f"{indicator:.4g}",
                "yes" if disclosure_occurs(mechanism.scale, true_x) else "no",
            ]
        )
    print(
        render_table(
            ["epsilon", "b", "Conf' (mean +- SE)", "rel err Q1", "rel err Q2", "2(b/x)^2", "disclosure?"],
            rows,
            title="Laplace-noised answers vs the true confidence 0.8383 (10 trials)",
        )
    )
    print(
        "\nReading: at epsilon = 0.5 the noisy answers are accurate AND the ratio"
        "\nreveals the sensitive rule; raising the noise to epsilon = 0.01 hides the"
        "\nrule but also destroys the answers' utility. Fixed-scale output noise"
        "\ncannot give both -- the motivation for reconstruction privacy."
    )


if __name__ == "__main__":
    main()
