"""Quickstart: publish a table under (lambda, delta)-reconstruction privacy.

Generates a synthetic ADULT sample, audits it, publishes it with the SPS
algorithm, and shows that aggregate statistics survive while the personal
group of a single individual no longer supports accurate reconstruction.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import (
    ReconstructionPrivacyPublisher,
    generate_adult,
    mle_frequencies,
    personal_groups,
)


def main() -> None:
    # 1. The raw data: 20,000 ADULT-like records, Income is sensitive.
    table = generate_adult(20_000, seed=20150323)
    print(f"raw data: {len(table)} records, "
          f"{table.schema.public_names} public, {table.schema.sensitive_name!r} sensitive")

    # 2. A publisher with the paper's default parameters.
    publisher = ReconstructionPrivacyPublisher(lam=0.3, delta=0.3, retention_probability=0.5)

    # 3. Audit first: how exposed is the raw data under plain uniform perturbation?
    audit = publisher.audit(table)
    print(f"before SPS: {audit.group_violation_rate:.1%} of personal groups violate "
          f"(0.3, 0.3)-reconstruction privacy, covering {audit.record_violation_rate:.1%} of records")

    # 4. Publish with Sampling-Perturbing-Scaling.
    result = publisher.publish(table, rng=0)
    print(f"published {len(result.published)} records; "
          f"{result.sps.n_sampled_groups}/{len(result.sps.groups)} groups needed sampling")

    # 5. Aggregate reconstruction still works: the overall income distribution
    #    recovered from the published data matches the raw data closely.
    p = result.spec.retention_probability
    published_counts = result.published.sensitive_counts()
    estimate = mle_frequencies(published_counts, p)
    truth = result.prepared.sensitive_frequencies()
    print("aggregate >50K frequency: "
          f"true {truth[1]:.4f} vs reconstructed {estimate[1]:.4f}")

    # 6. Personal reconstruction is blunted: the largest personal group now
    #    carries only ~s_g independent coin tosses.
    biggest = max(personal_groups(result.prepared), key=lambda g: g.size)
    record = next(g for g in result.sps.groups if g.key == biggest.key)
    print(f"largest personal group: {biggest.size} records, "
          f"sampled down to {record.sample_size} independent perturbations "
          f"(s_g = {record.max_group_size:.0f})")


if __name__ == "__main__":
    main()
