"""Quickstart: publish a table under (lambda, delta)-reconstruction privacy.

Generates a synthetic ADULT sample, publishes it through the strategy-first
pipeline (``repro.publish``), and shows that aggregate statistics survive
while the personal group of a single individual no longer supports accurate
reconstruction.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import repro


def main() -> None:
    # 1. The raw data: 20,000 ADULT-like records, Income is sensitive.
    table = repro.generate_adult(20_000, seed=20150323)
    print(f"raw data: {len(table)} records, "
          f"{table.schema.public_names} public, {table.schema.sensitive_name!r} sensitive")
    print(f"available strategies: {repro.available_strategies()}")

    # 2. One call runs the whole pipeline with the paper's default parameters:
    #    prepare -> generalize -> audit -> enforce (SPS) -> report.
    report = repro.publish(
        table,
        strategy="generalize+sps",
        lam=0.3,
        delta=0.3,
        retention_probability=0.5,
        rng=0,
    )

    # 3. The report carries the pre-publication audit: how exposed was the
    #    raw data under plain uniform perturbation?
    audit = report.audit
    print(f"before SPS: {audit.group_violation_rate:.1%} of personal groups violate "
          f"(0.3, 0.3)-reconstruction privacy, covering {audit.record_violation_rate:.1%} of records")
    print(f"published {len(report.published)} records; "
          f"{report.n_sampled_groups}/{len(report.groups)} groups needed sampling")

    # 4. Aggregate reconstruction still works: the overall income distribution
    #    recovered from the published data matches the raw data closely.
    p = report.spec.retention_probability
    published_counts = report.published.sensitive_counts()
    estimate = repro.mle_frequencies(published_counts, p)
    truth = report.prepared.sensitive_frequencies()
    print("aggregate >50K frequency: "
          f"true {truth[1]:.4f} vs reconstructed {estimate[1]:.4f}")

    # 5. Personal reconstruction is blunted: the largest personal group now
    #    carries only ~s_g independent coin tosses.
    biggest = max(repro.personal_groups(report.prepared), key=lambda g: g.size)
    record = next(g for g in report.groups if g.key == biggest.key)
    print(f"largest personal group: {biggest.size} records, "
          f"sampled down to {record.sample_size} independent perturbations "
          f"(s_g = {record.max_group_size:.0f})")

    # 6. Per-stage wall-clock timings come with every report.
    stages = ", ".join(f"{stage} {seconds * 1000:.1f}ms"
                       for stage, seconds in report.timings.items())
    print(f"pipeline stages: {stages}")


if __name__ == "__main__":
    main()
