"""Publishing your own CSV under reconstruction privacy.

Shows the workflow a downstream user follows for their own categorical data:
write/read a CSV, pick the sensitive column, choose a retention probability
from a rho1-rho2 requirement, audit, publish, and save the published CSV.

Run with::

    python examples/custom_dataset.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro import publish, read_csv, write_csv
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.perturbation.rho_privacy import max_retention_for_rho_privacy


def make_demo_csv(path: Path, n_records: int = 5_000, seed: int = 0) -> None:
    """Create a small employee-survey CSV with a sensitive Salary band."""
    schema = Schema(
        public=(
            Attribute("Department", ("engineering", "sales", "support", "hr")),
            Attribute("Seniority", ("junior", "mid", "senior")),
        ),
        sensitive=Attribute("SalaryBand", ("low", "medium", "high", "very-high")),
    )
    rng = np.random.default_rng(seed)
    departments = rng.choice(4, size=n_records, p=[0.4, 0.3, 0.2, 0.1])
    seniorities = rng.choice(3, size=n_records, p=[0.5, 0.3, 0.2])
    salary_weights = {
        0: [0.2, 0.4, 0.3, 0.1],  # engineering
        1: [0.3, 0.4, 0.2, 0.1],  # sales
        2: [0.5, 0.35, 0.1, 0.05],  # support
        3: [0.4, 0.4, 0.15, 0.05],  # hr
    }
    records = []
    for dept, seniority in zip(departments, seniorities):
        weights = np.asarray(salary_weights[int(dept)], dtype=float)
        if seniority == 2:  # seniors skew high
            weights = weights[::-1]
        weights = weights / weights.sum()
        salary = rng.choice(4, p=weights)
        records.append(
            (
                schema.public[0].decode(int(dept)),
                schema.public[1].decode(int(seniority)),
                schema.sensitive.decode(int(salary)),
            )
        )
    write_csv(Table.from_records(schema, records), path)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-demo-"))
    raw_path = workdir / "survey.csv"
    published_path = workdir / "survey_published.csv"
    make_demo_csv(raw_path)

    # 1. Load the CSV, naming the sensitive column.
    table = read_csv(raw_path, sensitive="SalaryBand")
    print(f"loaded {len(table)} records from {raw_path}")

    # 2. Pick p from a rho1-rho2 requirement (no 15% prior should grow past 60%).
    p = max_retention_for_rho_privacy(table.schema.sensitive_domain_size, rho1=0.15, rho2=0.6)
    print(f"retention probability for (0.15, 0.6)-privacy with m=4: p = {p:.3f}")

    # 3. Audit and publish under (0.3, 0.3)-reconstruction privacy on top of it.
    report = publish(
        table, strategy="generalize+sps",
        lam=0.3, delta=0.3, retention_probability=p, rng=0,
    )
    print(f"{report.audit.group_violation_rate:.1%} of personal groups violated before SPS; "
          f"{report.n_sampled_groups} groups were sampled")

    # 4. Save the published table for sharing.
    write_csv(report.published, published_path)
    print(f"published data written to {published_path}")


if __name__ == "__main__":
    main()
