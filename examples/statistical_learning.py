"""Statistical learning on data published under reconstruction privacy.

This is the utility half of the paper's claim: aggregate reconstruction keeps
supporting statistical learning even after SPS has made personal
reconstruction unreliable.  The example

1. publishes a synthetic "smokers and lung cancer" table with SPS,
2. mines association rules from the published data through MLE reconstruction
   and recovers the planted "smokers tend to have lung cancer" relationship,
3. trains a naive Bayes classifier for the sensitive attribute purely from
   reconstructed 1-D marginals and compares its accuracy with one trained on
   the raw data.

Run with::

    python examples/statistical_learning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro import publish
from repro.analysis.learning import NaiveBayesOnReconstruction, mine_rules_from_perturbed
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table


def build_health_table(n_per_group: int = 6_000, seed: int = 0) -> Table:
    """A synthetic health survey with a strong smoker -> lung-cancer association."""
    schema = Schema(
        public=(
            Attribute("Smoker", ("smoker", "nonsmoker")),
            Attribute("AgeBand", ("young", "middle", "senior")),
        ),
        sensitive=Attribute("Disease", ("lung-cancer", "heart-disease", "diabetes", "none")),
    )
    rng = np.random.default_rng(seed)
    profiles = {
        ("smoker", "young"): (0.25, 0.10, 0.10, 0.55),
        ("smoker", "middle"): (0.40, 0.20, 0.10, 0.30),
        ("smoker", "senior"): (0.55, 0.25, 0.10, 0.10),
        ("nonsmoker", "young"): (0.02, 0.05, 0.08, 0.85),
        ("nonsmoker", "middle"): (0.04, 0.15, 0.15, 0.66),
        ("nonsmoker", "senior"): (0.06, 0.30, 0.20, 0.44),
    }
    diseases = schema.sensitive.values
    records = []
    for (smoker, age), weights in profiles.items():
        draws = rng.choice(len(diseases), size=n_per_group, p=weights)
        records += [(smoker, age, diseases[d]) for d in draws]
    return Table.from_records(schema, records)


def main() -> None:
    table = build_health_table()
    result = publish(
        table, strategy="sps",
        lam=0.3, delta=0.3, retention_probability=0.4, rng=1,
    )
    p = result.spec.retention_probability
    print(
        f"published {len(result.published)} records; "
        f"{result.audit.record_violation_rate:.1%} of records were in violating groups, "
        f"{result.n_sampled_groups} groups sampled\n"
    )

    # --- Rule mining on the published data -------------------------------- #
    rules = mine_rules_from_perturbed(
        result.published, p, min_support=0.2, min_confidence=0.3, max_dimensionality=1
    )
    print("association rules reconstructed from the published data:")
    for rule in rules[:5]:
        conditions = ", ".join(f"{k}={v}" for k, v in rule.conditions)
        print(f"  {{{conditions}}} -> {rule.sensitive_value}"
              f"  (support {rule.support:.2f}, confidence {rule.confidence:.2f})")
    smoker_lung = [
        r for r in rules
        if r.conditions_dict() == {"Smoker": "smoker"} and r.sensitive_value == "lung-cancer"
    ]
    true_confidence = table.count({"Smoker": "smoker"}, "lung-cancer") / table.count({"Smoker": "smoker"})
    if smoker_lung:
        print(f"\n'smokers tend to have lung cancer': reconstructed confidence "
              f"{smoker_lung[0].confidence:.3f} vs true {true_confidence:.3f}")

    # --- Naive Bayes from reconstructed marginals -------------------------- #
    model = NaiveBayesOnReconstruction(retention_probability=p).fit(result.published)
    accuracy = model.accuracy(table)
    baseline = max(table.sensitive_frequencies())
    print(f"\nnaive Bayes trained on the published data: accuracy {accuracy:.3f} "
          f"(majority-class baseline {baseline:.3f})")


if __name__ == "__main__":
    main()
